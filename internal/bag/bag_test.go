package bag

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"harmony/internal/procsim"
	"harmony/internal/simclock"
)

func newApp(t *testing.T, cfg Config) (*App, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	cfg.Clock = clock
	app, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return app, clock
}

func TestNewValidation(t *testing.T) {
	clock := simclock.New()
	cases := []Config{
		{TotalWork: 1, Tasks: 1},                              // nil clock
		{Clock: clock, TotalWork: 0, Tasks: 1},                // no work
		{Clock: clock, TotalWork: 1, Tasks: 0},                // no tasks
		{Clock: clock, TotalWork: 1, Tasks: 1, TaskSkew: 1.5}, // bad skew
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestTaskSizesSumToTotalWork(t *testing.T) {
	app, _ := newApp(t, Config{TotalWork: 300, Tasks: 57, TaskSkew: 0.8, Seed: 3})
	sizes := app.TaskSizes()
	if len(sizes) != 57 {
		t.Fatalf("tasks = %d", len(sizes))
	}
	sum := 0.0
	for _, s := range sizes {
		if s <= 0 {
			t.Fatalf("non-positive task size %g", s)
		}
		sum += s
	}
	if math.Abs(sum-300) > 1e-9 {
		t.Fatalf("sizes sum = %g, want 300", sum)
	}
}

func TestSingleWorkerIterationTime(t *testing.T) {
	app, clock := newApp(t, Config{TotalWork: 100, Tasks: 10})
	cpus, err := WorkerCPUs(clock, []string{"n1"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var res IterationResult
	if err := app.RunIteration(cpus, func(r IterationResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if res.TasksRun != 10 || res.Workers != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := res.Elapsed(); got < 99*time.Second || got > 101*time.Second {
		t.Fatalf("elapsed = %v, want ~100s", got)
	}
	if app.Iterations() != 1 {
		t.Fatalf("iterations = %d", app.Iterations())
	}
}

func TestParallelSpeedup(t *testing.T) {
	elapsed := func(workers int) time.Duration {
		app, clock := newApp(t, Config{TotalWork: 400, Tasks: 80, Seed: 1})
		hosts := make([]string, workers)
		for i := range hosts {
			hosts[i] = string(rune('a' + i))
		}
		cpus, err := WorkerCPUs(clock, hosts, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		var res IterationResult
		if err := app.RunIteration(cpus, func(r IterationResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		clock.RunAll()
		return res.Elapsed()
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	speedup := t1.Seconds() / t4.Seconds()
	if speedup < 3.5 || speedup > 4.1 {
		t.Fatalf("4-worker speedup = %.2f (t1=%v t4=%v)", speedup, t1, t4)
	}
}

func TestSkewedTasksStillBalance(t *testing.T) {
	// Dynamic pulling load-balances even with skewed sizes: 4 workers on
	// 100 skewed tasks should finish well under 2x the ideal time.
	app, clock := newApp(t, Config{TotalWork: 400, Tasks: 100, TaskSkew: 1, Seed: 9})
	cpus, err := WorkerCPUs(clock, []string{"a", "b", "c", "d"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var res IterationResult
	if err := app.RunIteration(cpus, func(r IterationResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	ideal := 100 * time.Second
	if res.Elapsed() < ideal || res.Elapsed() > 2*ideal {
		t.Fatalf("skewed elapsed = %v, ideal %v", res.Elapsed(), ideal)
	}
}

func TestSharedCPUContention(t *testing.T) {
	// Two apps on the same single CPU take twice as long.
	clock := simclock.New()
	cpu, err := procsim.New("cpu", clock, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *App {
		app, err := New(Config{Clock: clock, TotalWork: 50, Tasks: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	var r1, r2 IterationResult
	if err := mk(1).RunIteration([]*procsim.Resource{cpu}, func(r IterationResult) { r1 = r }); err != nil {
		t.Fatal(err)
	}
	if err := mk(2).RunIteration([]*procsim.Resource{cpu}, func(r IterationResult) { r2 = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	last := r1.Finished
	if r2.Finished > last {
		last = r2.Finished
	}
	if last < 99*time.Second || last > 101*time.Second {
		t.Fatalf("two 50s bags on one CPU finished at %v, want ~100s", last)
	}
}

func TestCommunicationDelaysIteration(t *testing.T) {
	clock := simclock.New()
	link, err := procsim.New("link", clock, 1000) // 1000 bytes/s
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(Config{
		Clock:            clock,
		TotalWork:        10,
		Tasks:            10,
		PerTaskCommBytes: 1000, // 1 s per task over the link
		Link:             link,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpus, err := WorkerCPUs(clock, []string{"a"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var res IterationResult
	if err := app.RunIteration(cpus, func(r IterationResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	// 10 s compute + 10×1 s communication, serialized on one worker.
	if res.Elapsed() < 19*time.Second || res.Elapsed() > 21*time.Second {
		t.Fatalf("elapsed with comm = %v, want ~20s", res.Elapsed())
	}
}

func TestRunIterationValidation(t *testing.T) {
	app, clock := newApp(t, Config{TotalWork: 1, Tasks: 1})
	if err := app.RunIteration(nil, func(IterationResult) {}); err == nil {
		t.Fatal("no workers accepted")
	}
	cpus, err := WorkerCPUs(clock, []string{"a"}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.RunIteration(cpus, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestWorkerCPUsValidation(t *testing.T) {
	clock := simclock.New()
	if _, err := WorkerCPUs(clock, []string{"a"}, 0); err == nil {
		t.Fatal("zero speed accepted")
	}
	cpus, err := WorkerCPUs(clock, []string{"a", "b"}, 2.0)
	if err != nil || len(cpus) != 2 {
		t.Fatalf("cpus = %v, %v", cpus, err)
	}
	if cpus[0].Name() != "cpu.a" {
		t.Fatalf("name = %s", cpus[0].Name())
	}
}

func TestPerfModel(t *testing.T) {
	pts, err := PerfModel(300, 60, 0.5, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	// 1 worker: 300 + 0.5; 8 workers: 37.5 + 32.
	if math.Abs(pts[0].Seconds-300.5) > 1e-9 {
		t.Fatalf("p1 = %+v", pts[0])
	}
	if math.Abs(pts[3].Seconds-69.5) > 1e-9 {
		t.Fatalf("p8 = %+v", pts[3])
	}
	// Communication-dominated regime has a minimum between 1 and 8.
	best := pts[0]
	for _, p := range pts {
		if p.Seconds < best.Seconds {
			best = p
		}
	}
	if best.Workers == 1 {
		t.Fatal("model has no parallel benefit")
	}
	if _, err := PerfModel(0, 1, 0, []int{1}); err == nil {
		t.Fatal("bad work accepted")
	}
	if _, err := PerfModel(1, 1, 0, []int{0}); err == nil {
		t.Fatal("bad worker count accepted")
	}
	s := RSLPerformanceList(pts)
	if !strings.HasPrefix(s, "{1 300.5} {2 ") {
		t.Fatalf("RSL list = %q", s)
	}
}

// Property: iteration time on w idle workers is within [W/w, W/w + max
// task size] — the classic list-scheduling bound.
func TestPropertyListSchedulingBound(t *testing.T) {
	f := func(seed int64, wRaw, tRaw uint8) bool {
		workers := int(wRaw%8) + 1
		tasks := int(tRaw%50) + workers
		clock := simclock.New()
		app, err := New(Config{
			Clock:     clock,
			TotalWork: 100,
			Tasks:     tasks,
			TaskSkew:  1,
			Seed:      seed,
		})
		if err != nil {
			return false
		}
		hosts := make([]string, workers)
		for i := range hosts {
			hosts[i] = string(rune('a' + i))
		}
		cpus, err := WorkerCPUs(clock, hosts, 1.0)
		if err != nil {
			return false
		}
		var res IterationResult
		if err := app.RunIteration(cpus, func(r IterationResult) { res = r }); err != nil {
			return false
		}
		clock.RunAll()
		maxTask := 0.0
		for _, s := range app.TaskSizes() {
			if s > maxTask {
				maxTask = s
			}
		}
		lower := 100.0 / float64(workers)
		upper := lower + maxTask + 1e-6
		got := res.Elapsed().Seconds()
		return got >= lower-1e-6 && got <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
