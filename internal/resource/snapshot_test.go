package resource

import (
	"fmt"
	"math/rand"
	"testing"
)

func snapshotTestLedger(t *testing.T, nodes int) *Ledger {
	t.Helper()
	l := NewLedger()
	for i := 0; i < nodes; i++ {
		host := fmt.Sprintf("n%02d", i)
		if err := l.AddNode(Node{Hostname: host, Speed: 1, MemoryMB: 128, OS: "linux", CPUs: 1}); err != nil {
			t.Fatalf("AddNode: %v", err)
		}
	}
	for i := 0; i < nodes; i++ {
		for j := i + 1; j < nodes; j++ {
			lk := Link{A: fmt.Sprintf("n%02d", i), B: fmt.Sprintf("n%02d", j), BandwidthMbps: 100, LatencyMs: 1}
			if err := l.AddLink(lk); err != nil {
				t.Fatalf("AddLink: %v", err)
			}
		}
	}
	return l
}

func TestSnapshotReserveDoesNotTouchLedger(t *testing.T) {
	l := snapshotTestLedger(t, 3)
	snap := l.Snapshot()
	claim, err := snap.Reserve("hypo", []NodeClaim{{Hostname: "n00", MemoryMB: 64, CPULoad: 1}},
		[]LinkClaim{{A: "n00", B: "n01", BandwidthMbps: 10}})
	if err != nil {
		t.Fatalf("snapshot reserve: %v", err)
	}
	// Snapshot sees the reservation.
	ns, err := snap.Node("n00")
	if err != nil || ns.FreeMemoryMB != 64 || ns.CPULoad != 1 {
		t.Fatalf("snapshot node state = %+v, %v; want 64 MB free, load 1", ns, err)
	}
	ls, err := snap.Link("n00", "n01")
	if err != nil || ls.ReservedMbps != 10 {
		t.Fatalf("snapshot link state = %+v, %v; want 10 Mbps reserved", ls, err)
	}
	// Ledger is untouched.
	lns, err := l.Node("n00")
	if err != nil || lns.FreeMemoryMB != 128 || lns.CPULoad != 0 {
		t.Fatalf("ledger node state = %+v, %v; want pristine", lns, err)
	}
	if got := len(l.Claims()); got != 0 {
		t.Fatalf("ledger has %d claims, want 0", got)
	}
	// Releasing in the snapshot restores the snapshot state.
	if err := snap.Release(claim.ID); err != nil {
		t.Fatalf("snapshot release: %v", err)
	}
	ns, _ = snap.Node("n00")
	if ns.FreeMemoryMB != 128 || ns.CPULoad != 0 {
		t.Fatalf("snapshot after release = %+v, want pristine", ns)
	}
}

func TestSnapshotReleasesLedgerClaim(t *testing.T) {
	l := snapshotTestLedger(t, 2)
	claim, err := l.Reserve("app", []NodeClaim{{Hostname: "n00", MemoryMB: 100, CPULoad: 2}}, nil)
	if err != nil {
		t.Fatalf("ledger reserve: %v", err)
	}
	snap := l.Snapshot()
	if err := snap.Release(claim.ID); err != nil {
		t.Fatalf("snapshot release of ledger claim: %v", err)
	}
	ns, _ := snap.Node("n00")
	if ns.FreeMemoryMB != 128 || ns.CPULoad != 0 {
		t.Fatalf("snapshot after release = %+v, want restored", ns)
	}
	// Double release fails in the snapshot.
	if err := snap.Release(claim.ID); err == nil {
		t.Fatal("second snapshot release should fail")
	}
	// The real claim is still outstanding.
	if err := l.Release(claim.ID); err != nil {
		t.Fatalf("ledger release after snapshot release: %v", err)
	}
}

func TestSnapshotForkIsolation(t *testing.T) {
	l := snapshotTestLedger(t, 2)
	parent := l.Snapshot()
	if _, err := parent.Reserve("base", []NodeClaim{{Hostname: "n00", MemoryMB: 28, CPULoad: 0.5}}, nil); err != nil {
		t.Fatalf("parent reserve: %v", err)
	}
	forkA := parent.Fork()
	forkB := parent.Fork()
	if _, err := forkA.Reserve("a", []NodeClaim{{Hostname: "n00", MemoryMB: 100, CPULoad: 1}}, nil); err != nil {
		t.Fatalf("forkA reserve: %v", err)
	}
	// forkA sees base + its own claim.
	ns, _ := forkA.Node("n00")
	if ns.FreeMemoryMB != 0 || ns.CPULoad != 1.5 {
		t.Fatalf("forkA state = %+v, want 0 MB free, load 1.5", ns)
	}
	// forkB sees only the parent's claim.
	ns, _ = forkB.Node("n00")
	if ns.FreeMemoryMB != 100 || ns.CPULoad != 0.5 {
		t.Fatalf("forkB state = %+v, want 100 MB free, load 0.5", ns)
	}
	// forkB can reserve the same capacity independently.
	if _, err := forkB.Reserve("b", []NodeClaim{{Hostname: "n00", MemoryMB: 100, CPULoad: 1}}, nil); err != nil {
		t.Fatalf("forkB reserve: %v", err)
	}
}

func TestSnapshotUnknownEntities(t *testing.T) {
	l := snapshotTestLedger(t, 2)
	snap := l.Snapshot()
	if _, err := snap.Node("missing"); err == nil {
		t.Fatal("unknown node should error")
	}
	if _, err := snap.Link("n00", "missing"); err == nil {
		t.Fatal("unknown link should error")
	}
	if _, err := snap.Reserve("x", []NodeClaim{{Hostname: "missing"}}, nil); err == nil {
		t.Fatal("reserve on unknown node should error")
	}
	if _, err := snap.Reserve("x", nil, []LinkClaim{{A: "n00", B: "missing"}}); err == nil {
		t.Fatal("reserve on unknown link should error")
	}
	if err := snap.Release(9999); err == nil {
		t.Fatal("release of unknown claim should error")
	}
	if _, err := snap.Reserve("x", []NodeClaim{{Hostname: "n00", MemoryMB: 1e9}}, nil); err == nil {
		t.Fatal("over-capacity reserve should error")
	}
}

// TestSnapshotDifferentialProperty drives the same random reserve/release
// sequence through a live ledger and through a snapshot of its initial
// state, asserting the visible node/link states stay identical at every
// step. This is the soundness property the optimizer's hypothetical
// evaluation relies on.
func TestSnapshotDifferentialProperty(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		nodes := 2 + rng.Intn(5)
		ledger := snapshotTestLedger(t, nodes)
		shadow := snapshotTestLedger(t, nodes)
		snap := shadow.Snapshot()

		type pair struct{ ledgerID, snapID uint64 }
		var live []pair
		for step := 0; step < 60; step++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				host := fmt.Sprintf("n%02d", rng.Intn(nodes))
				other := fmt.Sprintf("n%02d", rng.Intn(nodes))
				nc := []NodeClaim{{Hostname: host, MemoryMB: float64(rng.Intn(64)), CPULoad: rng.Float64() * 2}}
				var lc []LinkClaim
				if other != host {
					lc = append(lc, LinkClaim{A: host, B: other, BandwidthMbps: rng.Float64() * 40})
				}
				lcl, lerr := ledger.Reserve("o", nc, lc)
				scl, serr := snap.Reserve("o", nc, lc)
				if (lerr == nil) != (serr == nil) {
					t.Fatalf("trial %d step %d: reserve divergence: ledger=%v snapshot=%v", trial, step, lerr, serr)
				}
				if lerr == nil {
					live = append(live, pair{lcl.ID, scl.ID})
				}
			} else {
				i := rng.Intn(len(live))
				p := live[i]
				lerr := ledger.Release(p.ledgerID)
				serr := snap.Release(p.snapID)
				if (lerr == nil) != (serr == nil) {
					t.Fatalf("trial %d step %d: release divergence: ledger=%v snapshot=%v", trial, step, lerr, serr)
				}
				live = append(live[:i], live[i+1:]...)
			}
			lns, sns := ledger.Nodes(), snap.Nodes()
			if len(lns) != len(sns) {
				t.Fatalf("trial %d step %d: node count divergence", trial, step)
			}
			for k := range lns {
				if lns[k] != sns[k] {
					t.Fatalf("trial %d step %d: node %s divergence:\nledger   %+v\nsnapshot %+v",
						trial, step, lns[k].Node.Hostname, lns[k], sns[k])
				}
			}
			for _, ls := range ledger.Links() {
				got, err := snap.Link(ls.Link.A, ls.Link.B)
				if err != nil || got != ls {
					t.Fatalf("trial %d step %d: link %s divergence: %+v vs %+v (%v)",
						trial, step, ls.Link.Key(), ls, got, err)
				}
			}
		}
	}
}

// TestSnapshotBaseCached verifies that snapshots taken while the ledger is
// unchanged share one immutable base (O(1) capture), and that any ledger
// mutation produces a fresh base reflecting the new state.
func TestSnapshotBaseCached(t *testing.T) {
	ledger := NewLedger()
	if err := ledger.AddNode(Node{Hostname: "a", Speed: 1, MemoryMB: 64, OS: "linux", CPUs: 1}); err != nil {
		t.Fatal(err)
	}
	s1, s2 := ledger.Snapshot(), ledger.Snapshot()
	if s1.base != s2.base {
		t.Fatal("unchanged ledger did not share the snapshot base")
	}
	claim, err := ledger.Reserve("x", []NodeClaim{{Hostname: "a", MemoryMB: 16, CPULoad: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s3 := ledger.Snapshot()
	if s3.base == s1.base {
		t.Fatal("mutated ledger reused a stale snapshot base")
	}
	ns, err := s3.Node("a")
	if err != nil || ns.FreeMemoryMB != 48 {
		t.Fatalf("fresh base state = %+v, %v", ns, err)
	}
	// The old base must still describe the pre-mutation world.
	old, err := s1.Node("a")
	if err != nil || old.FreeMemoryMB != 64 {
		t.Fatalf("old base state mutated: %+v, %v", old, err)
	}
	if err := ledger.Release(claim.ID); err != nil {
		t.Fatal(err)
	}
	if s4 := ledger.Snapshot(); s4.base == s3.base {
		t.Fatal("release did not invalidate the snapshot base cache")
	}
}
