package resource

import (
	"errors"
	"testing"
)

func restoreLedger(t *testing.T) *Ledger {
	t.Helper()
	l := NewLedger()
	if err := l.AddNode(Node{Hostname: "a", OS: "linux", Speed: 1, CPUs: 2, MemoryMB: 100}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddNode(Node{Hostname: "b", OS: "linux", Speed: 1, CPUs: 2, MemoryMB: 100}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLink(Link{A: "a", B: "b", BandwidthMbps: 100}); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRestoreClaimReproducesLedger(t *testing.T) {
	src := restoreLedger(t)
	c1, err := src.Reserve("app1", []NodeClaim{{Hostname: "a", MemoryMB: 40, CPULoad: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := src.Reserve("app2",
		[]NodeClaim{{Hostname: "a", MemoryMB: 10}, {Hostname: "b", MemoryMB: 20, CPULoad: 0.5}},
		[]LinkClaim{{A: "a", B: "b", BandwidthMbps: 30}})
	if err != nil {
		t.Fatal(err)
	}
	// Release the highest-ID claim so the sequence is ahead of live claims.
	if err := src.Release(c2.ID); err != nil {
		t.Fatal(err)
	}

	dst := restoreLedger(t)
	for _, c := range src.Claims() {
		if err := dst.RestoreClaim(*c); err != nil {
			t.Fatalf("restore claim %d: %v", c.ID, err)
		}
	}
	dst.SetClaimSeq(src.ClaimSeq())

	if got, want := dst.ClaimSeq(), src.ClaimSeq(); got != want {
		t.Fatalf("claim seq %d, want %d", got, want)
	}
	an, err := dst.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	if an.FreeMemoryMB != 60 || an.CPULoad != 1 {
		t.Fatalf("node a after restore: free %g load %g, want 60/1", an.FreeMemoryMB, an.CPULoad)
	}
	if err := dst.CheckConservation(); err != nil {
		t.Fatalf("conservation after restore: %v", err)
	}
	// The next Reserve on both ledgers must mint the same ID.
	s, err := src.Reserve("next", []NodeClaim{{Hostname: "b", MemoryMB: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dst.Reserve("next", []NodeClaim{{Hostname: "b", MemoryMB: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != d.ID {
		t.Fatalf("post-restore reserve IDs diverge: src %d dst %d", s.ID, d.ID)
	}
	_ = c1
}

func TestRestoreClaimRejectsBad(t *testing.T) {
	l := restoreLedger(t)
	if err := l.RestoreClaim(Claim{Owner: "x"}); err == nil {
		t.Fatal("zero-ID claim accepted")
	}
	if err := l.RestoreClaim(Claim{ID: 1, Nodes: []NodeClaim{{Hostname: "ghost", MemoryMB: 1}}}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: %v", err)
	}
	if err := l.RestoreClaim(Claim{ID: 1, Nodes: []NodeClaim{{Hostname: "a", MemoryMB: 500}}}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-memory: %v", err)
	}
	if err := l.RestoreClaim(Claim{ID: 1, Nodes: []NodeClaim{{Hostname: "a", MemoryMB: 5}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreClaim(Claim{ID: 1, Nodes: []NodeClaim{{Hostname: "b", MemoryMB: 5}}}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// Failed restores must not leak partial debits.
	if err := l.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
