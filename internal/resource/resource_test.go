package resource

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func testLedger(t *testing.T) *Ledger {
	t.Helper()
	l := NewLedger()
	nodes := []Node{
		{Hostname: "a", Speed: 1.0, MemoryMB: 128, OS: "linux", CPUs: 1},
		{Hostname: "b", Speed: 2.0, MemoryMB: 256, OS: "linux", CPUs: 2},
		{Hostname: "c", Speed: 0.5, MemoryMB: 64, OS: "aix", CPUs: 1},
	}
	for _, n := range nodes {
		if err := l.AddNode(n); err != nil {
			t.Fatalf("AddNode(%s): %v", n.Hostname, err)
		}
	}
	links := []Link{
		{A: "a", B: "b", BandwidthMbps: 100, LatencyMs: 1},
		{A: "b", B: "c", BandwidthMbps: 320, LatencyMs: 0.5},
	}
	for _, lk := range links {
		if err := l.AddLink(lk); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	return l
}

func TestNodeValidate(t *testing.T) {
	cases := []Node{
		{Hostname: "", Speed: 1, CPUs: 1},
		{Hostname: "x", Speed: 0, CPUs: 1},
		{Hostname: "x", Speed: 1, MemoryMB: -1, CPUs: 1},
		{Hostname: "x", Speed: 1, CPUs: 0},
	}
	for i, n := range cases {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) succeeded", i, n)
		}
	}
	ok := Node{Hostname: "x", Speed: 1, MemoryMB: 0, CPUs: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid node rejected: %v", err)
	}
}

func TestLinkKeySymmetric(t *testing.T) {
	if LinkKey("a", "b") != LinkKey("b", "a") {
		t.Fatal("LinkKey not symmetric")
	}
	l := Link{A: "z", B: "a"}
	if l.Key() != LinkKey("a", "z") {
		t.Fatal("Link.Key mismatch")
	}
}

func TestAddLinkUnknownNode(t *testing.T) {
	l := NewLedger()
	if err := l.AddNode(Node{Hostname: "a", Speed: 1, MemoryMB: 1, CPUs: 1}); err != nil {
		t.Fatal(err)
	}
	err := l.AddLink(Link{A: "a", B: "ghost", BandwidthMbps: 10})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if err := l.AddLink(Link{A: "a", B: "a", BandwidthMbps: 0}); err == nil {
		t.Fatal("zero-bandwidth link accepted")
	}
}

func TestReserveAndRelease(t *testing.T) {
	l := testLedger(t)
	claim, err := l.Reserve("job1",
		[]NodeClaim{{Hostname: "a", MemoryMB: 32, CPULoad: 1}},
		[]LinkClaim{{A: "a", B: "b", BandwidthMbps: 40}})
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	ns, err := l.Node("a")
	if err != nil {
		t.Fatal(err)
	}
	if ns.FreeMemoryMB != 96 || ns.CPULoad != 1 {
		t.Fatalf("node a state = %+v", ns)
	}
	ls, err := l.Link("b", "a") // reversed endpoints
	if err != nil {
		t.Fatal(err)
	}
	if ls.ReservedMbps != 40 || ls.FreeMbps() != 60 {
		t.Fatalf("link state = %+v", ls)
	}
	if err := l.Release(claim.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	ns, _ = l.Node("a")
	if ns.FreeMemoryMB != 128 || ns.CPULoad != 0 {
		t.Fatalf("node a after release = %+v", ns)
	}
	if err := l.Release(claim.ID); !errors.Is(err, ErrUnknownClaim) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestReserveMemoryHardLimit(t *testing.T) {
	l := testLedger(t)
	_, err := l.Reserve("big", []NodeClaim{{Hostname: "c", MemoryMB: 65}}, nil)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	// Failed reserve must not mutate state.
	ns, _ := l.Node("c")
	if ns.FreeMemoryMB != 64 {
		t.Fatalf("free memory after failed reserve = %g", ns.FreeMemoryMB)
	}
}

func TestReserveAtomicity(t *testing.T) {
	l := testLedger(t)
	// Second node claim fails; first must not be applied.
	_, err := l.Reserve("x",
		[]NodeClaim{
			{Hostname: "a", MemoryMB: 10, CPULoad: 5},
			{Hostname: "ghost", MemoryMB: 1},
		}, nil)
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	ns, _ := l.Node("a")
	if ns.FreeMemoryMB != 128 || ns.CPULoad != 0 {
		t.Fatalf("partial application after failure: %+v", ns)
	}
}

func TestReserveRejectsNegative(t *testing.T) {
	l := testLedger(t)
	if _, err := l.Reserve("x", []NodeClaim{{Hostname: "a", MemoryMB: -1}}, nil); err == nil {
		t.Fatal("negative memory claim accepted")
	}
	if _, err := l.Reserve("x", nil, []LinkClaim{{A: "a", B: "b", BandwidthMbps: -1}}); err == nil {
		t.Fatal("negative bandwidth claim accepted")
	}
}

func TestCPULoadBestEffort(t *testing.T) {
	l := testLedger(t)
	// CPU over-subscription is allowed; it degrades effective speed.
	for i := 0; i < 4; i++ {
		if _, err := l.Reserve(fmt.Sprintf("j%d", i),
			[]NodeClaim{{Hostname: "a", CPULoad: 1}}, nil); err != nil {
			t.Fatalf("Reserve %d: %v", i, err)
		}
	}
	ns, _ := l.Node("a")
	if ns.CPULoad != 4 {
		t.Fatalf("cpu load = %g, want 4", ns.CPULoad)
	}
	if got := ns.EffectiveSpeed(); got != 0.25 {
		t.Fatalf("effective speed = %g, want 0.25", got)
	}
}

func TestEffectiveSpeed(t *testing.T) {
	cases := []struct {
		speed float64
		cpus  int
		load  float64
		want  float64
	}{
		{1, 1, 0, 1},
		{1, 1, 1, 1},
		{1, 1, 2, 0.5},
		{2, 1, 4, 0.5},
		{1, 4, 2, 1},
		{1, 4, 8, 0.5},
	}
	for _, tc := range cases {
		if got := EffectiveSpeed(tc.speed, tc.cpus, tc.load); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("EffectiveSpeed(%g,%d,%g) = %g, want %g", tc.speed, tc.cpus, tc.load, got, tc.want)
		}
	}
}

func TestLinkUtilizationOversubscribe(t *testing.T) {
	l := testLedger(t)
	if _, err := l.Reserve("x", nil, []LinkClaim{{A: "a", B: "b", BandwidthMbps: 150}}); err != nil {
		t.Fatalf("best-effort bandwidth over-subscribe rejected: %v", err)
	}
	ls, _ := l.Link("a", "b")
	if ls.FreeMbps() != 0 {
		t.Fatalf("FreeMbps = %g, want 0 when over-subscribed", ls.FreeMbps())
	}
	if ls.Utilization() != 1.5 {
		t.Fatalf("Utilization = %g, want 1.5", ls.Utilization())
	}
}

func TestNodesLinksSorted(t *testing.T) {
	l := testLedger(t)
	nodes := l.Nodes()
	if len(nodes) != 3 || nodes[0].Node.Hostname != "a" || nodes[2].Node.Hostname != "c" {
		t.Fatalf("Nodes order = %v", nodes)
	}
	links := l.Links()
	if len(links) != 2 || links[0].Link.Key() != LinkKey("a", "b") {
		t.Fatalf("Links order = %v", links)
	}
}

func TestClaimsAndOutstandingFor(t *testing.T) {
	l := testLedger(t)
	c1, err := l.Reserve("app1", []NodeClaim{{Hostname: "a", CPULoad: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve("app2", []NodeClaim{{Hostname: "b", CPULoad: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(l.Claims()); got != 2 {
		t.Fatalf("Claims len = %d", got)
	}
	mine := l.OutstandingFor("app1")
	if len(mine) != 1 || mine[0].ID != c1.ID {
		t.Fatalf("OutstandingFor = %v", mine)
	}
}

func TestReplaceNodeWithClaimsFails(t *testing.T) {
	l := testLedger(t)
	if _, err := l.Reserve("x", []NodeClaim{{Hostname: "a", MemoryMB: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	err := l.AddNode(Node{Hostname: "a", Speed: 3, MemoryMB: 512, CPUs: 4})
	if err == nil {
		t.Fatal("replacing claimed node succeeded")
	}
}

func TestTotalMemory(t *testing.T) {
	l := testLedger(t)
	installed, free := l.TotalMemory()
	if installed != 448 || free != 448 {
		t.Fatalf("TotalMemory = %g, %g", installed, free)
	}
	if _, err := l.Reserve("x", []NodeClaim{{Hostname: "b", MemoryMB: 100}}, nil); err != nil {
		t.Fatal(err)
	}
	_, free = l.TotalMemory()
	if free != 348 {
		t.Fatalf("free after reserve = %g", free)
	}
}

func TestUnknownLookups(t *testing.T) {
	l := testLedger(t)
	if _, err := l.Node("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Node err = %v", err)
	}
	if _, err := l.Link("a", "ghost"); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("Link err = %v", err)
	}
}

func TestConcurrentReserveRelease(t *testing.T) {
	l := testLedger(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := l.Reserve("w",
					[]NodeClaim{{Hostname: "b", MemoryMB: 1, CPULoad: 0.1}},
					[]LinkClaim{{A: "a", B: "b", BandwidthMbps: 0.5}})
				if err != nil {
					t.Errorf("Reserve: %v", err)
					return
				}
				if err := l.Release(c.ID); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	ns, _ := l.Node("b")
	if ns.FreeMemoryMB != 256 || ns.CPULoad != 0 {
		t.Fatalf("ledger not restored: %+v", ns)
	}
	ls, _ := l.Link("a", "b")
	if ls.ReservedMbps != 0 {
		t.Fatalf("link not restored: %+v", ls)
	}
}

// Property: any sequence of successful reserves followed by releasing all
// claims restores free memory, CPU load and link reservations exactly.
func TestPropertyReserveReleaseRestores(t *testing.T) {
	f := func(memClaims []uint8, loads []uint8, bws []uint8) bool {
		l := NewLedger()
		if err := l.AddNode(Node{Hostname: "n", Speed: 1, MemoryMB: 1 << 20, CPUs: 2}); err != nil {
			return false
		}
		if err := l.AddNode(Node{Hostname: "m", Speed: 1, MemoryMB: 1 << 20, CPUs: 2}); err != nil {
			return false
		}
		if err := l.AddLink(Link{A: "n", B: "m", BandwidthMbps: 1000}); err != nil {
			return false
		}
		var ids []uint64
		max := len(memClaims)
		if len(loads) < max {
			max = len(loads)
		}
		if len(bws) < max {
			max = len(bws)
		}
		for i := 0; i < max; i++ {
			c, err := l.Reserve("p",
				[]NodeClaim{{Hostname: "n", MemoryMB: float64(memClaims[i]), CPULoad: float64(loads[i]) / 16}},
				[]LinkClaim{{A: "n", B: "m", BandwidthMbps: float64(bws[i])}})
			if err != nil {
				return false
			}
			ids = append(ids, c.ID)
		}
		for _, id := range ids {
			if err := l.Release(id); err != nil {
				return false
			}
		}
		ns, err := l.Node("n")
		if err != nil || ns.FreeMemoryMB != 1<<20 || ns.CPULoad != 0 {
			return false
		}
		ls, err := l.Link("n", "m")
		return err == nil && ls.ReservedMbps == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: free memory never exceeds installed memory and never goes
// negative under arbitrary interleavings of reserve/release.
func TestPropertyMemoryBounds(t *testing.T) {
	f := func(ops []uint8) bool {
		l := NewLedger()
		const installed = 100.0
		if err := l.AddNode(Node{Hostname: "n", Speed: 1, MemoryMB: installed, CPUs: 1}); err != nil {
			return false
		}
		var ids []uint64
		for _, op := range ops {
			if op%2 == 0 {
				c, err := l.Reserve("p", []NodeClaim{{Hostname: "n", MemoryMB: float64(op % 40)}}, nil)
				if err == nil {
					ids = append(ids, c.ID)
				}
			} else if len(ids) > 0 {
				id := ids[int(op)%len(ids)]
				_ = l.Release(id)
				for i, v := range ids {
					if v == id {
						ids = append(ids[:i], ids[i+1:]...)
						break
					}
				}
			}
			ns, err := l.Node("n")
			if err != nil {
				return false
			}
			if ns.FreeMemoryMB < 0 || ns.FreeMemoryMB > installed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
