package resource

import "fmt"

// View is the read/reserve surface shared by the live Ledger and
// hypothetical Snapshots of it. The matcher and predictor operate against a
// View, so the controller can evaluate candidate configurations
// side-effect-free: trial reservations land in a snapshot fork instead of
// the shared ledger.
type View interface {
	// Nodes returns snapshots of all nodes sorted by hostname.
	Nodes() []NodeState
	// Node returns the state of one node.
	Node(hostname string) (NodeState, error)
	// Link returns the state of one link.
	Link(a, b string) (LinkState, error)
	// Reserve atomically applies node and link claims, or none on failure.
	Reserve(owner string, nodes []NodeClaim, links []LinkClaim) (*Claim, error)
	// Release returns a claim's resources to the pool.
	Release(id uint64) error
}

var (
	_ View = (*Ledger)(nil)
	_ View = (*Snapshot)(nil)
)

// snapNode is one node's state captured in a snapshot layer.
type snapNode struct {
	node    Node
	freeMem float64
	cpuLoad float64
	health  NodeHealth
}

// snapBase is the immutable capture of a ledger taken by Ledger.Snapshot.
// It is shared by every fork of the snapshot and never written after
// construction.
type snapBase struct {
	nodes  map[string]snapNode
	links  map[string]linkEntry
	claims map[uint64]*Claim
	nextID uint64
}

// Snapshot is a copy-on-write view of a Ledger at the moment Snapshot() was
// called. Reserve and Release mutate only the snapshot's private overlay;
// the underlying ledger is untouched. Fork() produces an independent child
// sharing all state accumulated so far, so a controller can release an
// application's claim once in a parent snapshot and then trial-reserve many
// candidate placements in cheap per-candidate forks.
//
// A Snapshot is NOT safe for concurrent use; forks are independent and may
// be used from different goroutines concurrently (the shared layers are
// read-only once forked).
type Snapshot struct {
	base   *snapBase
	parent *Snapshot // frozen once forked from

	nodes    map[string]snapNode // copy-on-write overlay
	links    map[string]linkEntry
	claims   map[uint64]*Claim
	released map[uint64]bool
	nextID   uint64
}

// Snapshot captures the ledger's current state as a copy-on-write view.
// The capture cost is O(nodes + links + claims) after a mutation and O(1)
// while the ledger is unchanged (the immutable base is cached and shared);
// Fork calls are O(1) plus the size of the fork's own mutations.
func (l *Ledger) Snapshot() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapCache == nil {
		base := &snapBase{
			nodes:  make(map[string]snapNode, len(l.nodes)),
			links:  make(map[string]linkEntry, len(l.links)),
			claims: make(map[uint64]*Claim, len(l.claims)),
			nextID: l.nextID,
		}
		for h, e := range l.nodes {
			base.nodes[h] = snapNode{node: e.node, freeMem: e.freeMem, cpuLoad: e.cpuLoad, health: e.health}
		}
		for k, e := range l.links {
			base.links[k] = *e
		}
		for id, c := range l.claims {
			// Claims are immutable after creation, so sharing pointers is safe.
			base.claims[id] = c
		}
		l.snapCache = base
	}
	return &Snapshot{base: l.snapCache, nextID: l.snapCache.nextID}
}

// Fork returns an independent copy-on-write child. The receiver must not be
// mutated after forking: the child reads through it, so writes to the parent
// would leak into (and race with) every fork.
func (s *Snapshot) Fork() *Snapshot {
	return &Snapshot{base: s.base, parent: s, nextID: s.nextID}
}

// lookupNode walks the overlay chain for a node's current state.
func (s *Snapshot) lookupNode(hostname string) (snapNode, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.nodes != nil {
			if n, ok := cur.nodes[hostname]; ok {
				return n, true
			}
		}
	}
	n, ok := s.base.nodes[hostname]
	return n, ok
}

// lookupLink walks the overlay chain for a link's current state.
func (s *Snapshot) lookupLink(key string) (linkEntry, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.links != nil {
			if e, ok := cur.links[key]; ok {
				return e, true
			}
		}
	}
	e, ok := s.base.links[key]
	return e, ok
}

// lookupClaim finds an outstanding claim, honouring releases recorded in
// any layer of the chain.
func (s *Snapshot) lookupClaim(id uint64) (*Claim, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.released != nil && cur.released[id] {
			return nil, false
		}
		if cur.claims != nil {
			if c, ok := cur.claims[id]; ok {
				return c, true
			}
		}
	}
	c, ok := s.base.claims[id]
	return c, ok
}

func (s *Snapshot) setNode(hostname string, n snapNode) {
	if s.nodes == nil {
		s.nodes = make(map[string]snapNode)
	}
	s.nodes[hostname] = n
}

func (s *Snapshot) setLink(key string, e linkEntry) {
	if s.links == nil {
		s.links = make(map[string]linkEntry)
	}
	s.links[key] = e
}

// Nodes returns the state of all nodes sorted by hostname, matching
// Ledger.Nodes ordering exactly (the matcher's scan order depends on it).
func (s *Snapshot) Nodes() []NodeState {
	out := make([]NodeState, 0, len(s.base.nodes))
	for h := range s.base.nodes {
		n, _ := s.lookupNode(h)
		out = append(out, NodeState{Node: n.node, FreeMemoryMB: n.freeMem, CPULoad: n.cpuLoad, Health: n.health})
	}
	sortNodeStates(out)
	return out
}

// Node returns the snapshot state of one node.
func (s *Snapshot) Node(hostname string) (NodeState, error) {
	n, ok := s.lookupNode(hostname)
	if !ok {
		return NodeState{}, fmt.Errorf("%w: %s", ErrUnknownNode, hostname)
	}
	return NodeState{Node: n.node, FreeMemoryMB: n.freeMem, CPULoad: n.cpuLoad, Health: n.health}, nil
}

// Link returns the snapshot state of one link.
func (s *Snapshot) Link(a, b string) (LinkState, error) {
	e, ok := s.lookupLink(LinkKey(a, b))
	if !ok {
		return LinkState{}, fmt.Errorf("%w: %s-%s", ErrUnknownLink, a, b)
	}
	return LinkState{Link: e.link, ReservedMbps: e.reserved}, nil
}

// Reserve applies node and link claims to the snapshot overlay with the
// same validation and arithmetic as Ledger.Reserve, so a hypothetical
// reservation is byte-identical to what committing it would produce.
func (s *Snapshot) Reserve(owner string, nodes []NodeClaim, links []LinkClaim) (*Claim, error) {
	// Validate first.
	for _, nc := range nodes {
		e, ok := s.lookupNode(nc.Hostname)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nc.Hostname)
		}
		if nc.MemoryMB < 0 || nc.CPULoad < 0 {
			return nil, fmt.Errorf("resource: negative claim on %s", nc.Hostname)
		}
		if nc.MemoryMB > e.freeMem {
			return nil, fmt.Errorf("%w: %s memory (need %g MB, free %g MB)",
				ErrInsufficient, nc.Hostname, nc.MemoryMB, e.freeMem)
		}
	}
	for _, lc := range links {
		if _, ok := s.lookupLink(LinkKey(lc.A, lc.B)); !ok {
			return nil, fmt.Errorf("%w: %s-%s", ErrUnknownLink, lc.A, lc.B)
		}
		if lc.BandwidthMbps < 0 {
			return nil, fmt.Errorf("resource: negative bandwidth claim on %s-%s", lc.A, lc.B)
		}
	}
	// Apply into the overlay.
	for _, nc := range nodes {
		e, _ := s.lookupNode(nc.Hostname)
		e.freeMem -= nc.MemoryMB
		e.cpuLoad += nc.CPULoad
		s.setNode(nc.Hostname, e)
	}
	for _, lc := range links {
		key := LinkKey(lc.A, lc.B)
		e, _ := s.lookupLink(key)
		e.reserved += lc.BandwidthMbps
		s.setLink(key, e)
	}
	s.nextID++
	c := &Claim{ID: s.nextID, Owner: owner}
	c.Nodes = append(c.Nodes, nodes...)
	c.Links = append(c.Links, links...)
	if s.claims == nil {
		s.claims = make(map[uint64]*Claim)
	}
	s.claims[c.ID] = c
	return c, nil
}

// Release returns a claim's resources to the snapshot, whether the claim
// was created in this snapshot or captured from the underlying ledger. The
// clamping mirrors Ledger.Release exactly.
func (s *Snapshot) Release(id uint64) error {
	c, ok := s.lookupClaim(id)
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownClaim, id)
	}
	for _, nc := range c.Nodes {
		if e, ok := s.lookupNode(nc.Hostname); ok {
			e.freeMem += nc.MemoryMB
			e.cpuLoad -= nc.CPULoad
			if e.cpuLoad < 1e-12 {
				e.cpuLoad = 0
			}
			if e.freeMem > e.node.MemoryMB {
				e.freeMem = e.node.MemoryMB
			}
			s.setNode(nc.Hostname, e)
		}
	}
	for _, lc := range c.Links {
		key := LinkKey(lc.A, lc.B)
		if e, ok := s.lookupLink(key); ok {
			e.reserved -= lc.BandwidthMbps
			if e.reserved < 1e-12 {
				e.reserved = 0
			}
			s.setLink(key, e)
		}
	}
	if s.claims != nil {
		delete(s.claims, id)
	}
	if s.released == nil {
		s.released = make(map[uint64]bool)
	}
	s.released[id] = true
	return nil
}
