// Package resource defines Harmony's resource model: nodes whose computing
// capacity is expressed relative to a reference machine (a 400 MHz
// Pentium II in the paper, Section 3), links with bandwidth and latency, and
// a capacity ledger that tracks allocations so the matcher (Section 4.1)
// can decrease available resources as requirements are placed.
package resource

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// ReferenceMachineDescription documents the abstract machine against which
// all "seconds" requirements are quantified.
const ReferenceMachineDescription = "400 MHz Pentium II (speed 1.0)"

// Node is one machine published to Harmony via harmonyNode.
type Node struct {
	// Hostname uniquely identifies the machine.
	Hostname string
	// Speed scales the reference machine: 2.0 executes reference-seconds
	// twice as fast.
	Speed float64
	// MemoryMB is installed memory.
	MemoryMB float64
	// OS is the operating system name ("linux", "aix", ...).
	OS string
	// CPUs is the processor count.
	CPUs int
}

// Validate checks invariants.
func (n *Node) Validate() error {
	if n.Hostname == "" {
		return errors.New("resource: node needs a hostname")
	}
	if n.Speed <= 0 {
		return fmt.Errorf("resource: node %s speed %g must be positive", n.Hostname, n.Speed)
	}
	if n.MemoryMB < 0 {
		return fmt.Errorf("resource: node %s memory %g must be non-negative", n.Hostname, n.MemoryMB)
	}
	if n.CPUs < 1 {
		return fmt.Errorf("resource: node %s cpus %d must be >= 1", n.Hostname, n.CPUs)
	}
	return nil
}

// NodeHealth is a node's lifecycle state. The zero value is HealthUp, so
// nodes are schedulable unless explicitly marked otherwise.
type NodeHealth int

const (
	// HealthUp accepts new placements.
	HealthUp NodeHealth = iota
	// HealthDraining keeps existing claims but refuses new placements, so
	// the node can be vacated gracefully.
	HealthDraining
	// HealthDown is unreachable: no placements, and claims pinned to the
	// node must be evicted (EvictHost).
	HealthDown
)

// String implements fmt.Stringer.
func (h NodeHealth) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthDraining:
		return "draining"
	case HealthDown:
		return "down"
	}
	return fmt.Sprintf("NodeHealth(%d)", int(h))
}

// ParseNodeHealth parses a lifecycle state name ("up", "draining", "down";
// "drain" is accepted as an alias for "draining").
func ParseNodeHealth(s string) (NodeHealth, error) {
	switch s {
	case "up":
		return HealthUp, nil
	case "draining", "drain":
		return HealthDraining, nil
	case "down":
		return HealthDown, nil
	}
	return 0, fmt.Errorf("resource: unknown node health %q (want up, draining or down)", s)
}

// Link is a network connection between two machines.
type Link struct {
	// A and B are the endpoint hostnames; links are undirected.
	A, B string
	// BandwidthMbps is total capacity in megabits per second.
	BandwidthMbps float64
	// LatencyMs is one-way latency in milliseconds.
	LatencyMs float64
}

// Key returns a direction-independent identifier for the link.
func (l *Link) Key() string { return LinkKey(l.A, l.B) }

// LinkKey builds the direction-independent identifier for a node pair.
func LinkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// NodeClaim records resources reserved on one node for one allocation.
type NodeClaim struct {
	// Hostname is the node charged.
	Hostname string
	// MemoryMB is the reserved memory.
	MemoryMB float64
	// CPULoad is the steady-state CPU demand in reference-machine units
	// (1.0 means it would saturate one reference CPU).
	CPULoad float64
}

// LinkClaim records bandwidth reserved on one link.
type LinkClaim struct {
	// A and B are the endpoint hostnames.
	A, B string
	// BandwidthMbps is the reserved bandwidth.
	BandwidthMbps float64
}

// Claim is a reservation of node and link resources that can be released as
// a unit (when an application ends or is reconfigured to another option).
type Claim struct {
	// ID identifies the claim within its ledger.
	ID uint64
	// Owner is a free-form tag naming the claiming application/option.
	Owner string
	// Nodes lists per-node reservations.
	Nodes []NodeClaim
	// Links lists per-link reservations.
	Links []LinkClaim
}

// Errors reported by the ledger.
var (
	// ErrUnknownNode is returned when a claim names an unregistered node.
	ErrUnknownNode = errors.New("resource: unknown node")
	// ErrUnknownLink is returned when a claim names an unregistered link.
	ErrUnknownLink = errors.New("resource: unknown link")
	// ErrInsufficient is returned when capacity would go negative.
	ErrInsufficient = errors.New("resource: insufficient capacity")
	// ErrUnknownClaim is returned when releasing an id not held.
	ErrUnknownClaim = errors.New("resource: unknown claim")
)

// NodeState is a snapshot of one node's allocation state.
type NodeState struct {
	// Node is the immutable node description.
	Node Node
	// FreeMemoryMB is unreserved memory.
	FreeMemoryMB float64
	// CPULoad is the sum of reference-unit CPU demands placed on the node.
	CPULoad float64
	// Health is the node's lifecycle state; only HealthUp nodes accept new
	// placements.
	Health NodeHealth
}

// EffectiveSpeed reports the per-job execution speed (reference units) the
// node delivers under its current load: with total demand d spread over c
// CPUs of speed s, each unit of demand progresses at min(1, c/d)·s. This is
// the contention model the paper's default predictor relies on ("suitably
// scaled to reflect resource contention", Section 3.1).
func (ns NodeState) EffectiveSpeed() float64 {
	return EffectiveSpeed(ns.Node.Speed, ns.Node.CPUs, ns.CPULoad)
}

// EffectiveSpeed computes contention-scaled speed for arbitrary parameters.
func EffectiveSpeed(speed float64, cpus int, load float64) float64 {
	if load <= float64(cpus) {
		return speed
	}
	return speed * float64(cpus) / load
}

// LinkState is a snapshot of one link's allocation state.
type LinkState struct {
	// Link is the immutable link description.
	Link Link
	// ReservedMbps is the sum of bandwidth reservations.
	ReservedMbps float64
}

// FreeMbps is the unreserved bandwidth (never negative).
func (ls LinkState) FreeMbps() float64 {
	free := ls.Link.BandwidthMbps - ls.ReservedMbps
	if free < 0 {
		return 0
	}
	return free
}

// Utilization is the reserved fraction of the link, >1 when over-subscribed
// by best-effort claims.
func (ls LinkState) Utilization() float64 {
	if ls.Link.BandwidthMbps <= 0 {
		return 0
	}
	return ls.ReservedMbps / ls.Link.BandwidthMbps
}

// Ledger tracks registered nodes/links and outstanding claims. It is safe
// for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	nodes   map[string]*nodeEntry
	links   map[string]*linkEntry
	claims  map[uint64]*Claim
	nextID  uint64
	baseMem map[string]float64
	// snapCache is the immutable base shared by snapshots taken since the
	// last mutation; any write to the ledger drops it (see Snapshot).
	snapCache *snapBase
}

type nodeEntry struct {
	node    Node
	freeMem float64
	cpuLoad float64
	health  NodeHealth
}

func (e *nodeEntry) state() NodeState {
	return NodeState{Node: e.node, FreeMemoryMB: e.freeMem, CPULoad: e.cpuLoad, Health: e.health}
}

type linkEntry struct {
	link     Link
	reserved float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		nodes:   make(map[string]*nodeEntry),
		links:   make(map[string]*linkEntry),
		claims:  make(map[uint64]*Claim),
		baseMem: make(map[string]float64),
	}
}

// AddNode registers (or replaces an unclaimed) node.
func (l *Ledger) AddNode(n Node) error {
	if err := n.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, exists := l.nodes[n.Hostname]; exists && (old.cpuLoad > 0 || old.freeMem != old.node.MemoryMB) {
		return fmt.Errorf("resource: node %s has outstanding claims", n.Hostname)
	}
	l.nodes[n.Hostname] = &nodeEntry{node: n, freeMem: n.MemoryMB}
	l.baseMem[n.Hostname] = n.MemoryMB
	l.snapCache = nil
	return nil
}

// AddLink registers a link between two already-registered nodes.
func (l *Ledger) AddLink(lk Link) error {
	if lk.BandwidthMbps <= 0 {
		return fmt.Errorf("resource: link %s-%s bandwidth %g must be positive", lk.A, lk.B, lk.BandwidthMbps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.nodes[lk.A]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, lk.A)
	}
	if _, ok := l.nodes[lk.B]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, lk.B)
	}
	l.links[lk.Key()] = &linkEntry{link: lk}
	l.snapCache = nil
	return nil
}

// Node returns the snapshot state of a node.
func (l *Ledger) Node(hostname string) (NodeState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.nodes[hostname]
	if !ok {
		return NodeState{}, fmt.Errorf("%w: %s", ErrUnknownNode, hostname)
	}
	return e.state(), nil
}

// SetNodeHealth transitions a node's lifecycle state. Claims already placed
// on the node are unaffected; callers that mark a node down should follow up
// with EvictHost to reclaim them.
func (l *Ledger) SetNodeHealth(hostname string, h NodeHealth) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.nodes[hostname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, hostname)
	}
	if e.health == h {
		return nil
	}
	e.health = h
	l.snapCache = nil
	return nil
}

// NodeHealth reports a node's lifecycle state.
func (l *Ledger) NodeHealth(hostname string) (NodeHealth, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.nodes[hostname]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownNode, hostname)
	}
	return e.health, nil
}

// ClaimsOn reports the outstanding claims holding resources on hostname,
// sorted by id.
func (l *Ledger) ClaimsOn(hostname string) []*Claim {
	var out []*Claim
	for _, c := range l.Claims() {
		for _, nc := range c.Nodes {
			if nc.Hostname == hostname {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// EvictHost releases every claim holding resources on hostname (claims are
// released whole, freeing their reservations on surviving nodes too) and
// returns the evicted claims so callers can re-place their owners.
func (l *Ledger) EvictHost(hostname string) []*Claim {
	evicted := l.ClaimsOn(hostname)
	for _, c := range evicted {
		_ = l.Release(c.ID)
	}
	return evicted
}

// Link returns the snapshot state of a link.
func (l *Ledger) Link(a, b string) (LinkState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.links[LinkKey(a, b)]
	if !ok {
		return LinkState{}, fmt.Errorf("%w: %s-%s", ErrUnknownLink, a, b)
	}
	return LinkState{Link: e.link, ReservedMbps: e.reserved}, nil
}

// Nodes returns snapshots of all nodes sorted by hostname.
func (l *Ledger) Nodes() []NodeState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]NodeState, 0, len(l.nodes))
	for _, e := range l.nodes {
		out = append(out, e.state())
	}
	sortNodeStates(out)
	return out
}

// sortNodeStates orders node states by hostname, the scan order the matcher
// relies on. Ledger.Nodes and Snapshot.Nodes must agree on it.
func sortNodeStates(states []NodeState) {
	sort.Slice(states, func(i, j int) bool { return states[i].Node.Hostname < states[j].Node.Hostname })
}

// Links returns snapshots of all links sorted by key.
func (l *Ledger) Links() []LinkState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LinkState, 0, len(l.links))
	for _, e := range l.links {
		out = append(out, LinkState{Link: e.link, ReservedMbps: e.reserved})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link.Key() < out[j].Link.Key() })
	return out
}

// Reserve atomically applies every node and link claim, or none on failure.
// Memory claims are hard (fail when free memory is insufficient); CPU load
// and link bandwidth are best-effort (they accumulate and degrade predicted
// performance via contention, matching the paper's model where extra work
// slows everyone rather than being rejected).
func (l *Ledger) Reserve(owner string, nodes []NodeClaim, links []LinkClaim) (*Claim, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Validate first.
	for _, nc := range nodes {
		e, ok := l.nodes[nc.Hostname]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownNode, nc.Hostname)
		}
		if nc.MemoryMB < 0 || nc.CPULoad < 0 {
			return nil, fmt.Errorf("resource: negative claim on %s", nc.Hostname)
		}
		if nc.MemoryMB > e.freeMem {
			return nil, fmt.Errorf("%w: %s memory (need %g MB, free %g MB)",
				ErrInsufficient, nc.Hostname, nc.MemoryMB, e.freeMem)
		}
	}
	for _, lc := range links {
		if _, ok := l.links[LinkKey(lc.A, lc.B)]; !ok {
			return nil, fmt.Errorf("%w: %s-%s", ErrUnknownLink, lc.A, lc.B)
		}
		if lc.BandwidthMbps < 0 {
			return nil, fmt.Errorf("resource: negative bandwidth claim on %s-%s", lc.A, lc.B)
		}
	}
	// Apply.
	l.snapCache = nil
	for _, nc := range nodes {
		e := l.nodes[nc.Hostname]
		e.freeMem -= nc.MemoryMB
		e.cpuLoad += nc.CPULoad
	}
	for _, lc := range links {
		l.links[LinkKey(lc.A, lc.B)].reserved += lc.BandwidthMbps
	}
	l.nextID++
	c := &Claim{ID: l.nextID, Owner: owner}
	c.Nodes = append(c.Nodes, nodes...)
	c.Links = append(c.Links, links...)
	l.claims[c.ID] = c
	return c, nil
}

// Release returns a claim's resources to the pool.
func (l *Ledger) Release(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.claims[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownClaim, id)
	}
	l.snapCache = nil
	for _, nc := range c.Nodes {
		if e, ok := l.nodes[nc.Hostname]; ok {
			e.freeMem += nc.MemoryMB
			e.cpuLoad -= nc.CPULoad
			if e.cpuLoad < 1e-12 {
				e.cpuLoad = 0
			}
			if e.freeMem > e.node.MemoryMB {
				e.freeMem = e.node.MemoryMB
			}
		}
	}
	for _, lc := range c.Links {
		if e, ok := l.links[LinkKey(lc.A, lc.B)]; ok {
			e.reserved -= lc.BandwidthMbps
			if e.reserved < 1e-12 {
				e.reserved = 0
			}
		}
	}
	delete(l.claims, id)
	return nil
}

// Claims returns outstanding claims sorted by id.
func (l *Ledger) Claims() []*Claim {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Claim, 0, len(l.claims))
	for _, c := range l.claims {
		cp := *c
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OutstandingFor reports the claims whose Owner equals owner.
func (l *Ledger) OutstandingFor(owner string) []*Claim {
	var out []*Claim
	for _, c := range l.Claims() {
		if c.Owner == owner {
			out = append(out, c)
		}
	}
	return out
}

// TotalMemory reports installed and free memory across all nodes.
func (l *Ledger) TotalMemory() (installed, free float64) {
	for _, ns := range l.Nodes() {
		installed += ns.Node.MemoryMB
		free += ns.FreeMemoryMB
	}
	return installed, free
}

// conservationEpsilon absorbs floating-point drift from repeated
// reserve/release cycles when checking conservation.
const conservationEpsilon = 1e-6

// CheckConservation verifies that the outstanding claims exactly account
// for the capacity missing from every node and link: no resources leaked
// (missing capacity with no claim to show for it) and none double-freed
// (claims exceeding the missing capacity). The chaos soak calls this after
// every churn round to catch eviction/adoption bugs.
func (l *Ledger) CheckConservation() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	wantMem := make(map[string]float64, len(l.nodes))
	wantLoad := make(map[string]float64, len(l.nodes))
	wantBw := make(map[string]float64, len(l.links))
	for _, c := range l.claims {
		for _, nc := range c.Nodes {
			wantMem[nc.Hostname] += nc.MemoryMB
			wantLoad[nc.Hostname] += nc.CPULoad
		}
		for _, lc := range c.Links {
			wantBw[LinkKey(lc.A, lc.B)] += lc.BandwidthMbps
		}
	}
	for h, e := range l.nodes {
		if used := e.node.MemoryMB - e.freeMem; math.Abs(used-wantMem[h]) > conservationEpsilon {
			return fmt.Errorf("resource: node %s memory not conserved: %g MB in use, claims total %g MB", h, used, wantMem[h])
		}
		if math.Abs(e.cpuLoad-wantLoad[h]) > conservationEpsilon {
			return fmt.Errorf("resource: node %s load not conserved: %g charged, claims total %g", h, e.cpuLoad, wantLoad[h])
		}
	}
	for k, e := range l.links {
		if math.Abs(e.reserved-wantBw[k]) > conservationEpsilon {
			return fmt.Errorf("resource: link %s bandwidth not conserved: %g Mbps reserved, claims total %g Mbps", k, e.reserved, wantBw[k])
		}
	}
	return nil
}
