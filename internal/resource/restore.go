package resource

import "fmt"

// RestoreClaim reinstates a claim with its original ID, used when a replica
// rebuilds its ledger from a replicated snapshot rather than by replaying
// the Reserve calls that created the claims. Validation matches Reserve
// (unknown nodes/links and memory over-subscription are rejected) and the
// claim-ID sequence is raised so later Reserve calls never collide.
func (l *Ledger) RestoreClaim(c Claim) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.ID == 0 {
		return fmt.Errorf("resource: restore claim: zero id")
	}
	if _, ok := l.claims[c.ID]; ok {
		return fmt.Errorf("resource: restore claim: duplicate id %d", c.ID)
	}
	for _, nc := range c.Nodes {
		e, ok := l.nodes[nc.Hostname]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownNode, nc.Hostname)
		}
		if nc.MemoryMB < 0 || nc.CPULoad < 0 {
			return fmt.Errorf("resource: negative claim on %s", nc.Hostname)
		}
		if nc.MemoryMB > e.freeMem {
			return fmt.Errorf("%w: %s memory (need %g MB, free %g MB)",
				ErrInsufficient, nc.Hostname, nc.MemoryMB, e.freeMem)
		}
	}
	for _, lc := range c.Links {
		if _, ok := l.links[LinkKey(lc.A, lc.B)]; !ok {
			return fmt.Errorf("%w: %s-%s", ErrUnknownLink, lc.A, lc.B)
		}
		if lc.BandwidthMbps < 0 {
			return fmt.Errorf("resource: negative bandwidth claim on %s-%s", lc.A, lc.B)
		}
	}
	l.snapCache = nil
	for _, nc := range c.Nodes {
		e := l.nodes[nc.Hostname]
		e.freeMem -= nc.MemoryMB
		e.cpuLoad += nc.CPULoad
	}
	for _, lc := range c.Links {
		l.links[LinkKey(lc.A, lc.B)].reserved += lc.BandwidthMbps
	}
	cp := c
	cp.Nodes = append([]NodeClaim(nil), c.Nodes...)
	cp.Links = append([]LinkClaim(nil), c.Links...)
	l.claims[cp.ID] = &cp
	if cp.ID > l.nextID {
		l.nextID = cp.ID
	}
	return nil
}

// ClaimSeq reports the last claim ID issued, so replicated snapshots can
// reproduce the exact ID sequence on restore.
func (l *Ledger) ClaimSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID
}

// SetClaimSeq sets the claim-ID sequence to seq so a restored ledger mints
// exactly the same IDs as its source, clamped so it never drops below an
// outstanding claim's ID (which would mint colliding IDs).
func (l *Ledger) SetClaimSeq(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for id := range l.claims {
		if id > seq {
			seq = id
		}
	}
	l.nextID = seq
}
