package minidb

import (
	"math/rand"
	"testing"
	"time"

	"harmony/internal/simclock"
)

// meanResponse runs `clients` concurrent sessions in the given mode for a
// fixed number of queries each and returns the grand mean response time.
// The server cache is pre-warmed so the comparison isolates steady-state
// behaviour.
func meanResponse(t *testing.T, mode Mode, clients int) time.Duration {
	t.Helper()
	clock := simclock.New()
	e, err := NewEngine(EngineConfig{
		Clock:             clock,
		TuplesPerRelation: testRelSize,
		ServerMemoryMB:    64,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the server pool.
	warm, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Run(Query{}, func(QueryResult) {}); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	warm.Close()

	var total time.Duration
	count := 0
	const queriesPerClient = 4
	for c := 0; c < clients; c++ {
		s, err := e.NewSession(mode, 17)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rng := rand.New(rand.NewSource(int64(c) + 11))
		remaining := queriesPerClient
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			if err := s.Run(RandomQuery(rng, testRelSize), func(r QueryResult) {
				total += r.ResponseTime()
				count++
				issue()
			}); err != nil {
				t.Error(err)
			}
		}
		issue()
	}
	clock.RunAll()
	if count != clients*queriesPerClient {
		t.Fatalf("completed %d queries, want %d", count, clients*queriesPerClient)
	}
	return total / time.Duration(count)
}

// TestQSDSCrossover verifies the engine-level mechanism behind Figure 7:
// query-shipping wins with few clients (the server is fast and its cache
// is warm), but its response time grows roughly linearly in the client
// count while data-shipping stays nearly flat, so the ranking flips.
func TestQSDSCrossover(t *testing.T) {
	qs1 := meanResponse(t, QueryShipping, 1)
	qs3 := meanResponse(t, QueryShipping, 3)
	ds1 := meanResponse(t, DataShipping, 1)
	ds3 := meanResponse(t, DataShipping, 3)

	if qs1 >= ds1 {
		t.Fatalf("one client: QS %v should beat DS %v", qs1, ds1)
	}
	if qs3 <= ds3 {
		t.Fatalf("three clients: DS %v should beat QS %v", ds3, qs3)
	}
	// QS degrades super-proportionally to DS.
	qsGrowth := qs3.Seconds() / qs1.Seconds()
	dsGrowth := ds3.Seconds() / ds1.Seconds()
	if qsGrowth < 2 {
		t.Fatalf("QS growth %0.2f, want >= 2 (server contention)", qsGrowth)
	}
	if dsGrowth > qsGrowth {
		t.Fatalf("DS growth %0.2f exceeds QS growth %0.2f", dsGrowth, qsGrowth)
	}
}

// TestDSFlatUnderClientScaling pins down why DS wins at scale: each client
// burns its own CPU, so adding clients barely moves per-client times.
func TestDSFlatUnderClientScaling(t *testing.T) {
	ds1 := meanResponse(t, DataShipping, 1)
	ds3 := meanResponse(t, DataShipping, 3)
	ratio := ds3.Seconds() / ds1.Seconds()
	if ratio > 1.9 {
		t.Fatalf("DS 3-client/1-client ratio = %.2f, want < 1.9 (link sharing only)", ratio)
	}
}
