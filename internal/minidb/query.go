package minidb

import (
	"fmt"
	"math/rand"
)

// Query is the paper's workload unit: "similar, but randomly perturbed join
// queries over two instances of the Wisconsin benchmark relations ... In
// each query, tuples from both relations are selected on an indexed
// attribute (10% selectivity) and then joined on a unique attribute."
// Selections are ranges on the indexed unique1 attribute covering 10% of
// each relation; the join equates unique2. With both selections drawing
// random 10% subsets of positions, a query over n-tuple relations yields
// about n/100 matches.
type Query struct {
	// LoA and LoB are the unique1 range starts; each selection covers
	// [Lo, Lo + n/10). The random starts are the perturbation between
	// queries.
	LoA, LoB int32
}

// SelectivityDenominator fixes the benchmark's 10% selectivity.
const SelectivityDenominator = 10

// RandomQuery draws a perturbed query over n-tuple relations from rng.
func RandomQuery(rng *rand.Rand, n int) Query {
	span := n - n/SelectivityDenominator
	if span < 1 {
		span = 1
	}
	return Query{LoA: int32(rng.Intn(span)), LoB: int32(rng.Intn(span))}
}

// ExecStats accounts for one query execution's physical work; the engine
// turns these into virtual-time costs.
type ExecStats struct {
	// TuplesScanned counts tuples read during the selections.
	TuplesScanned int
	// ProbeOps counts hash-join build inserts plus probe lookups.
	ProbeOps int
	// ResultTuples counts join output tuples.
	ResultTuples int
	// PageRequests, PageHits, PageMisses count buffer pool traffic.
	PageRequests, PageHits, PageMisses int
	// IndexLookups counts index probes.
	IndexLookups int
}

// add merges o into s.
func (s *ExecStats) add(o ExecStats) {
	s.TuplesScanned += o.TuplesScanned
	s.ProbeOps += o.ProbeOps
	s.ResultTuples += o.ResultTuples
	s.PageRequests += o.PageRequests
	s.PageHits += o.PageHits
	s.PageMisses += o.PageMisses
	s.IndexLookups += o.IndexLookups
}

// Table bundles a relation with its indexes for execution.
type Table struct {
	// Rel is the stored relation.
	Rel *Relation
	// SelIndex is the index on the selection attribute (unique1).
	SelIndex *Index
}

// NewTable builds a table with a unique1 selection index.
func NewTable(rel *Relation) (*Table, error) {
	idx, err := BuildIndex(rel, "unique1")
	if err != nil {
		return nil, err
	}
	return &Table{Rel: rel, SelIndex: idx}, nil
}

// selSpan is the tuple count of one 10% selection.
func selSpan(tbl *Table) int32 {
	span := int32(tbl.Rel.N / SelectivityDenominator)
	if span < 1 {
		span = 1
	}
	return span
}

// indexSelect runs a 10% range selection through the pool, returning the
// matching tuples and the physical stats.
func indexSelect(tbl *Table, pool *Pool, lo int32) ([]Tuple, ExecStats, error) {
	var stats ExecStats
	rids := tbl.SelIndex.Range(lo, lo+selSpan(tbl))
	stats.IndexLookups = 1
	out := make([]Tuple, 0, len(rids))
	var curPage int32 = -1
	var tuples []Tuple
	for _, rid := range rids {
		if rid.Page != curPage {
			var hit bool
			var err error
			tuples, hit, err = pool.Get(tbl.Rel, rid.Page)
			if err != nil {
				return nil, stats, err
			}
			stats.PageRequests++
			if hit {
				stats.PageHits++
			} else {
				stats.PageMisses++
			}
			curPage = rid.Page
		}
		if int(rid.Slot) >= len(tuples) {
			return nil, stats, fmt.Errorf("minidb: rid %v out of range", rid)
		}
		out = append(out, tuples[rid.Slot])
		stats.TuplesScanned++
	}
	return out, stats, nil
}

// hashJoin joins two tuple sets on the unique2 attribute.
func hashJoin(left, right []Tuple) (int, ExecStats) {
	var stats ExecStats
	build := make(map[int32]int, len(left))
	for i := range left {
		build[left[i].Unique2]++
		stats.ProbeOps++
	}
	matches := 0
	for i := range right {
		stats.ProbeOps++
		matches += build[right[i].Unique2]
	}
	stats.ResultTuples = matches
	return matches, stats
}

// ExecuteJoin runs the full benchmark query against two tables through one
// buffer pool (wherever the query executes — server for query-shipping,
// client for data-shipping).
func ExecuteJoin(a, b *Table, pool *Pool, q Query) (ExecStats, error) {
	if a == nil || b == nil || pool == nil {
		return ExecStats{}, fmt.Errorf("minidb: ExecuteJoin needs two tables and a pool")
	}
	var total ExecStats
	left, s1, err := indexSelect(a, pool, q.LoA)
	if err != nil {
		return total, err
	}
	total.add(s1)
	right, s2, err := indexSelect(b, pool, q.LoB)
	if err != nil {
		return total, err
	}
	total.add(s2)
	_, s3 := hashJoin(left, right)
	total.add(s3)
	return total, nil
}

// SelectPages returns the distinct pages a 10% selection starting at lo
// touches; data-shipping clients must hold (or fetch) exactly these pages.
func SelectPages(tbl *Table, lo int32) []int32 {
	rids := tbl.SelIndex.Range(lo, lo+selSpan(tbl))
	seen := make(map[int32]bool)
	var pages []int32
	for _, rid := range rids {
		if !seen[rid.Page] {
			seen[rid.Page] = true
			pages = append(pages, rid.Page)
		}
	}
	return pages
}
