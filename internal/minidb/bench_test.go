package minidb

import (
	"math/rand"
	"testing"

	"harmony/internal/simclock"
)

func benchEngine(b *testing.B, tuples int) *Engine {
	b.Helper()
	e, err := NewEngine(EngineConfig{
		Clock:             simclock.New(),
		TuplesPerRelation: tuples,
		ServerMemoryMB:    64,
		Seed:              1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkWisconsinGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MakeWisconsin("w", 19000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildIndex(b *testing.B) {
	r, err := MakeWisconsin("w", 19000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(r, "unique1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexRange(b *testing.B) {
	r, err := MakeWisconsin("w", 19000, 1)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := BuildIndex(r, "unique1")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rids := idx.Range(int32(i%17000), int32(i%17000)+1900)
		if len(rids) == 0 {
			b.Fatal("empty range")
		}
	}
}

func BenchmarkExecuteJoinWarm(b *testing.B) {
	e := benchEngine(b, 19000)
	pool, err := NewPool(4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Warm the pool once.
	if _, err := ExecuteJoin(e.TableA, e.TableB, pool, Query{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := RandomQuery(rng, 19000)
		if _, err := ExecuteJoin(e.TableA, e.TableB, pool, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQSQuerySimulated(b *testing.B) {
	clock := simclock.New()
	e, err := NewEngine(EngineConfig{
		Clock:             clock,
		TuplesPerRelation: 19000,
		ServerMemoryMB:    64,
		Seed:              1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		if err := s.Run(RandomQuery(rng, 19000), func(QueryResult) { done = true }); err != nil {
			b.Fatal(err)
		}
		clock.RunAll()
		if !done {
			b.Fatal("query did not complete")
		}
	}
}

func BenchmarkPoolGet(b *testing.B) {
	r, err := MakeWisconsin("w", 19000, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPool(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Get(r, int32(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}
