package minidb

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ClientLoop drives one session with back-to-back randomly perturbed
// queries, as each client in the paper's experiment does, recording every
// result. It runs entirely on the virtual clock: each completion submits
// the next query until Stop.
type ClientLoop struct {
	session *Session
	rng     *rand.Rand
	record  func(QueryResult)

	mu      sync.Mutex
	stopped bool
	results []QueryResult
}

// StartClientLoop begins issuing queries on the session. The optional
// record callback observes each result (on the clock goroutine); results
// are also retained for Results.
func StartClientLoop(s *Session, seed int64, record func(QueryResult)) (*ClientLoop, error) {
	if s == nil {
		return nil, errors.New("minidb: nil session")
	}
	l := &ClientLoop{
		session: s,
		rng:     rand.New(rand.NewSource(seed)),
		record:  record,
	}
	if err := l.issue(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *ClientLoop) issue() error {
	q := RandomQuery(l.rng, l.session.engine.TableA.Rel.N)
	return l.session.Run(q, l.onDone)
}

func (l *ClientLoop) onDone(res QueryResult) {
	l.mu.Lock()
	l.results = append(l.results, res)
	stopped := l.stopped
	rec := l.record
	l.mu.Unlock()
	if rec != nil {
		rec(res)
	}
	if !stopped {
		// Submit the next query at the current virtual instant; errors
		// (clock stopped) terminate the loop.
		if err := l.issue(); err != nil {
			l.Stop()
		}
	}
}

// Stop prevents further queries; the in-flight query still completes.
func (l *ClientLoop) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
}

// Results copies the completed query results so far.
func (l *ClientLoop) Results() []QueryResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryResult, len(l.results))
	copy(out, l.results)
	return out
}

// MeanResponseBetween averages response times of queries finishing within
// [from, to); ok is false when none did.
func (l *ClientLoop) MeanResponseBetween(from, to time.Duration) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum time.Duration
	n := 0
	for _, r := range l.results {
		if r.Finished >= from && r.Finished < to {
			sum += r.ResponseTime()
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / time.Duration(n), true
}
