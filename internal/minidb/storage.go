package minidb

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
)

// PageBytes is the storage page size.
const PageBytes = 4096

// TuplesPerPage is how many 208-byte tuples fit a 4 KB page.
const TuplesPerPage = PageBytes / TupleBytes

// PoolStats summarizes buffer pool traffic.
type PoolStats struct {
	// Hits and Misses count page requests served from / past the pool.
	Hits, Misses int64
	// Evictions counts pages dropped to make room.
	Evictions int64
}

// HitRate is Hits / (Hits + Misses), zero when empty.
func (s PoolStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is an LRU page buffer pool. The server's pool is shared by all
// query-shipping clients — the paper attributes one client's better
// response time to "cooperative caching effects on the server since all
// clients are accessing the same relations" — while each data-shipping
// client has a private pool whose size is the memory Harmony granted it.
type Pool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are pageKey
	entries  map[pageKey]*list.Element
	stats    PoolStats
}

type pageKey struct {
	rel  string
	page int32
}

// NewPool builds a pool holding up to capacityPages pages.
func NewPool(capacityPages int) (*Pool, error) {
	if capacityPages < 1 {
		return nil, fmt.Errorf("minidb: pool capacity %d must be >= 1", capacityPages)
	}
	return &Pool{
		capacity: capacityPages,
		lru:      list.New(),
		entries:  make(map[pageKey]*list.Element, capacityPages),
	}, nil
}

// PoolForMemory sizes a pool from a memory grant in MB (at least one page).
func PoolForMemory(memoryMB float64) (*Pool, error) {
	pages := int(memoryMB * 1024 * 1024 / PageBytes)
	if pages < 1 {
		pages = 1
	}
	return NewPool(pages)
}

// Capacity reports the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Get fetches one page of rel through the pool, reporting whether it was a
// hit. Misses install the page, evicting the least recently used entry.
func (p *Pool) Get(rel *Relation, pageNo int32) ([]Tuple, bool, error) {
	tuples, err := rel.page(int(pageNo))
	if err != nil {
		return nil, false, err
	}
	key := pageKey{rel: rel.Name, page: pageNo}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		return tuples, true, nil
	}
	p.stats.Misses++
	if p.lru.Len() >= p.capacity {
		oldest := p.lru.Back()
		if oldest != nil {
			if k, ok := oldest.Value.(pageKey); ok {
				delete(p.entries, k)
			}
			p.lru.Remove(oldest)
			p.stats.Evictions++
		}
	}
	p.entries[key] = p.lru.PushFront(key)
	return tuples, false, nil
}

// Contains reports whether a page is cached (no LRU side effects).
func (p *Pool) Contains(relName string, pageNo int32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[pageKey{rel: relName, page: pageNo}]
	return ok
}

// Len reports the number of cached pages.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Stats returns a copy of the counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reset empties the pool and zeroes the counters.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.entries = make(map[pageKey]*list.Element, p.capacity)
	p.stats = PoolStats{}
}

// Index is an ordered secondary index mapping attribute values to RIDs,
// built with a sort and searched with binary search — the moral equivalent
// of the benchmark's B-tree for a read-only workload.
type Index struct {
	attr    string
	entries []indexEntry
}

type indexEntry struct {
	key int32
	rid RID
}

// Attribute selectors available for indexing.
var attrSelectors = map[string]func(*Tuple) int32{
	"unique1":    func(t *Tuple) int32 { return t.Unique1 },
	"unique2":    func(t *Tuple) int32 { return t.Unique2 },
	"tenPercent": func(t *Tuple) int32 { return t.TenPercent },
	"onePercent": func(t *Tuple) int32 { return t.OnePercent },
}

// BuildIndex indexes rel on the named attribute.
func BuildIndex(rel *Relation, attr string) (*Index, error) {
	sel, ok := attrSelectors[attr]
	if !ok {
		return nil, fmt.Errorf("minidb: no such indexable attribute %q", attr)
	}
	idx := &Index{attr: attr, entries: make([]indexEntry, 0, rel.N)}
	for pageNo := range rel.pages {
		for slot := range rel.pages[pageNo] {
			t := &rel.pages[pageNo][slot]
			idx.entries = append(idx.entries, indexEntry{
				key: sel(t),
				rid: RID{Page: int32(pageNo), Slot: int32(slot)},
			})
		}
	}
	sortEntries(idx.entries)
	return idx, nil
}

// sortEntries orders the index by (key, page, slot) for deterministic
// range scans.
func sortEntries(es []indexEntry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.rid.Page != b.rid.Page {
			return a.rid.Page < b.rid.Page
		}
		return a.rid.Slot < b.rid.Slot
	})
}

// Attr reports the indexed attribute name.
func (i *Index) Attr() string { return i.attr }

// Len reports the number of index entries.
func (i *Index) Len() int { return len(i.entries) }

// Lookup returns the RIDs whose key equals v, in (page, slot) order.
func (i *Index) Lookup(v int32) []RID {
	lo := i.lowerBound(v)
	var out []RID
	for j := lo; j < len(i.entries) && i.entries[j].key == v; j++ {
		out = append(out, i.entries[j].rid)
	}
	return out
}

// Range returns the RIDs whose key lies in [lo, hi), in key order.
func (i *Index) Range(lo, hi int32) []RID {
	start := i.lowerBound(lo)
	var out []RID
	for j := start; j < len(i.entries) && i.entries[j].key < hi; j++ {
		out = append(out, i.entries[j].rid)
	}
	return out
}

// lowerBound finds the first entry with key >= v.
func (i *Index) lowerBound(v int32) int {
	lo, hi := 0, len(i.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if i.entries[mid].key < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
