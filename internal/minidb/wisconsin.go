// Package minidb is a miniature relational engine standing in for
// Tornadito/SHORE in the paper's database experiment (Section 6): Wisconsin
// benchmark relations of 208-byte tuples, heap-file storage behind an LRU
// buffer pool, an ordered index, selection and hash-join operators, and
// query-shipping / data-shipping executors whose costs play out on
// discrete-event CPU and link resources. The engine reproduces the
// behaviours Figure 7 depends on: server load that grows with the number of
// query-shipping clients, cooperative caching at the server, and a
// memory-for-bandwidth tradeoff at data-shipping clients.
package minidb

import (
	"fmt"
	"math/rand"
)

// TupleBytes is the Wisconsin benchmark tuple size used in the paper's
// workload ("100,000 208-byte tuples").
const TupleBytes = 208

// Tuple is one Wisconsin benchmark record: thirteen 4-byte integer
// attributes (52 bytes) plus three 52-byte string attributes, 208 bytes in
// all, following Gray's Benchmark Handbook definition.
type Tuple struct {
	// Unique1 is a dense unique key 0..n-1 in random order.
	Unique1 int32
	// Unique2 is the sequential position 0..n-1.
	Unique2 int32
	// Two, Four, Ten, Twenty are Unique1 mod 2/4/10/20.
	Two, Four, Ten, Twenty int32
	// OnePercent, TenPercent, TwentyPercent, FiftyPercent are Unique1 mod
	// 100/10/5/2: selections on them yield the named selectivity.
	OnePercent, TenPercent, TwentyPercent, FiftyPercent int32
	// Unique3, EvenOnePercent, OddOnePercent are derived per the benchmark.
	Unique3, EvenOnePercent, OddOnePercent int32
	// StringU1, StringU2, String4 pad the record to 208 bytes.
	StringU1, StringU2, String4 [52]byte
}

// MakeTuple derives every attribute from (unique1, unique2).
func MakeTuple(unique1, unique2 int32) Tuple {
	t := Tuple{
		Unique1:        unique1,
		Unique2:        unique2,
		Two:            unique1 % 2,
		Four:           unique1 % 4,
		Ten:            unique1 % 10,
		Twenty:         unique1 % 20,
		OnePercent:     unique1 % 100,
		TenPercent:     unique1 % 10,
		TwentyPercent:  unique1 % 5,
		FiftyPercent:   unique1 % 2,
		Unique3:        unique1,
		EvenOnePercent: (unique1 % 100) * 2,
		OddOnePercent:  (unique1%100)*2 + 1,
	}
	fillString(&t.StringU1, unique1)
	fillString(&t.StringU2, unique2)
	fillString(&t.String4, unique1%4)
	return t
}

// fillString writes the benchmark's cyclic letter padding.
func fillString(dst *[52]byte, seed int32) {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXY"
	v := seed
	for i := range dst {
		dst[i] = letters[int(v)%len(letters)]
		v = v/int32(len(letters)) + 1 + int32(i)
	}
}

// Relation is a named Wisconsin relation stored as pages of tuples.
type Relation struct {
	// Name identifies the relation ("wisc_a", "wisc_b").
	Name string
	// N is the tuple count.
	N     int
	pages [][]Tuple
}

// MakeWisconsin generates an n-tuple relation with unique1 a seeded random
// permutation of 0..n-1, matching the benchmark's construction. The paper's
// experiments use two instances with n = 100,000.
func MakeWisconsin(name string, n int, seed int64) (*Relation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("minidb: relation size %d must be positive", n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	r := &Relation{Name: name, N: n}
	page := make([]Tuple, 0, TuplesPerPage)
	for i := 0; i < n; i++ {
		page = append(page, MakeTuple(int32(perm[i]), int32(i)))
		if len(page) == TuplesPerPage {
			r.pages = append(r.pages, page)
			page = make([]Tuple, 0, TuplesPerPage)
		}
	}
	if len(page) > 0 {
		r.pages = append(r.pages, page)
	}
	return r, nil
}

// Pages reports the number of pages in the relation.
func (r *Relation) Pages() int { return len(r.pages) }

// SizeBytes reports the relation's storage footprint.
func (r *Relation) SizeBytes() int { return r.N * TupleBytes }

// page returns the tuples of one page (storage-level access; normal reads
// go through a Pool).
func (r *Relation) page(no int) ([]Tuple, error) {
	if no < 0 || no >= len(r.pages) {
		return nil, fmt.Errorf("minidb: %s has no page %d", r.Name, no)
	}
	return r.pages[no], nil
}

// RID addresses one tuple: page number and slot within the page.
type RID struct {
	// Page is the page number.
	Page int32
	// Slot is the index within the page.
	Slot int32
}
