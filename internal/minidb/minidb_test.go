package minidb

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"harmony/internal/simclock"
)

const testRelSize = 19000 // 1000 pages; fast to generate, same structure

func testEngine(t *testing.T, serverMB float64) (*Engine, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	e, err := NewEngine(EngineConfig{
		Clock:             clock,
		TuplesPerRelation: testRelSize,
		ServerMemoryMB:    serverMB,
		Seed:              7,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e, clock
}

func TestMakeTupleAttributes(t *testing.T) {
	tp := MakeTuple(137, 42)
	if tp.Two != 1 || tp.Four != 1 || tp.Ten != 7 || tp.Twenty != 17 {
		t.Fatalf("mod attrs = %+v", tp)
	}
	if tp.OnePercent != 37 || tp.TenPercent != 7 || tp.TwentyPercent != 2 || tp.FiftyPercent != 1 {
		t.Fatalf("selectivity attrs = %+v", tp)
	}
	if tp.Unique1 != 137 || tp.Unique2 != 42 {
		t.Fatalf("keys = %+v", tp)
	}
}

func TestTupleSizeMatchesPaper(t *testing.T) {
	// 13 int32 attributes + 3×52-byte strings = 208 bytes.
	if got := 13*4 + 3*52; got != TupleBytes {
		t.Fatalf("tuple layout = %d bytes, want %d", got, TupleBytes)
	}
	if TuplesPerPage != 19 {
		t.Fatalf("TuplesPerPage = %d, want 19", TuplesPerPage)
	}
}

func TestMakeWisconsin(t *testing.T) {
	r, err := MakeWisconsin("w", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 100 || r.Pages() != 6 { // ceil(100/19)
		t.Fatalf("relation = n %d pages %d", r.N, r.Pages())
	}
	if r.SizeBytes() != 100*208 {
		t.Fatalf("SizeBytes = %d", r.SizeBytes())
	}
	// unique1 is a permutation of 0..99; unique2 sequential.
	seen := make(map[int32]bool)
	for p := 0; p < r.Pages(); p++ {
		tuples, err := r.page(p)
		if err != nil {
			t.Fatal(err)
		}
		for s, tp := range tuples {
			if seen[tp.Unique1] {
				t.Fatalf("duplicate unique1 %d", tp.Unique1)
			}
			seen[tp.Unique1] = true
			if int(tp.Unique2) != p*TuplesPerPage+s {
				t.Fatalf("unique2 = %d at page %d slot %d", tp.Unique2, p, s)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("unique1 count = %d", len(seen))
	}
	if _, err := MakeWisconsin("w", 0, 1); err == nil {
		t.Fatal("zero-size relation accepted")
	}
	if _, err := r.page(99); err == nil {
		t.Fatal("out-of-range page accepted")
	}
}

func TestPoolLRU(t *testing.T) {
	r, err := MakeWisconsin("w", 19*4, 1) // 4 pages
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	get := func(page int32) bool {
		_, hit, err := p.Get(r, page)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	if get(0) || get(1) {
		t.Fatal("cold pool hit")
	}
	if !get(0) {
		t.Fatal("warm page missed")
	}
	// Page 1 is now LRU; inserting 2 evicts it.
	if get(2) {
		t.Fatal("new page hit")
	}
	if get(1) {
		t.Fatal("evicted page hit")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.2 {
		t.Fatalf("hit rate = %g", st.HitRate())
	}
	if p.Len() != 2 || p.Capacity() != 2 {
		t.Fatalf("len/cap = %d/%d", p.Len(), p.Capacity())
	}
	p.Reset()
	if p.Len() != 0 || p.Stats().Misses != 0 {
		t.Fatal("Reset incomplete")
	}
	if _, err := NewPool(0); err == nil {
		t.Fatal("zero-capacity pool accepted")
	}
}

func TestPoolForMemory(t *testing.T) {
	p, err := PoolForMemory(1) // 1 MB = 256 pages
	if err != nil || p.Capacity() != 256 {
		t.Fatalf("capacity = %d, %v", p.Capacity(), err)
	}
	p, err = PoolForMemory(0.0001)
	if err != nil || p.Capacity() != 1 {
		t.Fatalf("tiny grant capacity = %d, %v", p.Capacity(), err)
	}
}

func TestIndexLookupAndRange(t *testing.T) {
	r, err := MakeWisconsin("w", 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIndex(r, "unique1")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Attr() != "unique1" || idx.Len() != 1000 {
		t.Fatalf("index meta = %s/%d", idx.Attr(), idx.Len())
	}
	rids := idx.Lookup(500)
	if len(rids) != 1 {
		t.Fatalf("Lookup(500) = %v", rids)
	}
	if got := len(idx.Range(100, 200)); got != 100 {
		t.Fatalf("Range(100,200) = %d rids", got)
	}
	if got := len(idx.Range(990, 2000)); got != 10 {
		t.Fatalf("Range over end = %d", got)
	}
	if got := len(idx.Range(5, 5)); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
	if _, err := BuildIndex(r, "nope"); err == nil {
		t.Fatal("unknown attribute indexed")
	}
	// tenPercent index groups 100 tuples per key.
	tidx, err := BuildIndex(r, "tenPercent")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tidx.Lookup(3)); got != 100 {
		t.Fatalf("tenPercent Lookup = %d", got)
	}
}

func TestExecuteJoinSelectivityAndMatches(t *testing.T) {
	e, _ := testEngine(t, 64)
	pool, err := NewPool(4096)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ExecuteJoin(e.TableA, e.TableB, pool, Query{LoA: 0, LoB: 0})
	if err != nil {
		t.Fatal(err)
	}
	span := testRelSize / 10
	if stats.TuplesScanned != 2*span {
		t.Fatalf("scanned %d, want %d", stats.TuplesScanned, 2*span)
	}
	// Expected matches ~= span * 10% = 190; allow generous slack for the
	// random permutations.
	if stats.ResultTuples < span/20 || stats.ResultTuples > span/3 {
		t.Fatalf("matches = %d, want near %d", stats.ResultTuples, span/10)
	}
	if stats.IndexLookups != 2 {
		t.Fatalf("index lookups = %d", stats.IndexLookups)
	}
	if stats.PageMisses == 0 || stats.PageMisses > e.TableA.Rel.Pages()+e.TableB.Rel.Pages() {
		t.Fatalf("page misses = %d", stats.PageMisses)
	}
	if _, err := ExecuteJoin(nil, e.TableB, pool, Query{}); err == nil {
		t.Fatal("nil table accepted")
	}
}

func TestSelectPagesMatchesMissesOnColdPool(t *testing.T) {
	e, _ := testEngine(t, 64)
	pages := SelectPages(e.TableA, 100)
	pool, err := NewPool(100000)
	if err != nil {
		t.Fatal(err)
	}
	tuples, stats, err := indexSelect(e.TableA, pool, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != testRelSize/10 {
		t.Fatalf("selected %d tuples", len(tuples))
	}
	if stats.PageMisses != len(pages) {
		t.Fatalf("cold misses %d != distinct pages %d", stats.PageMisses, len(pages))
	}
}

func TestModeStringAndFromOption(t *testing.T) {
	if QueryShipping.String() != "QS" || DataShipping.String() != "DS" {
		t.Fatal("Mode.String broken")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
	m, err := ModeFromOption("QS")
	if err != nil || m != QueryShipping {
		t.Fatal("ModeFromOption QS")
	}
	m, err = ModeFromOption("DS")
	if err != nil || m != DataShipping {
		t.Fatal("ModeFromOption DS")
	}
	if _, err := ModeFromOption("XX"); err == nil {
		t.Fatal("unknown option accepted")
	}
}

func TestQSQueryCompletesWithPlausibleTime(t *testing.T) {
	e, clock := testEngine(t, 64)
	s, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var res QueryResult
	if err := s.Run(Query{LoA: 0, LoB: 0}, func(r QueryResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if res.Mode != QueryShipping || res.Finished <= 0 {
		t.Fatalf("result = %+v", res)
	}
	rt := res.ResponseTime()
	// ~4200 tuple-ops * 100µs + ~1700 misses * 400µs ≈ 1.1 s for the
	// 19000-tuple test relations; just sanity-check the magnitude.
	if rt < 100*time.Millisecond || rt > 10*time.Second {
		t.Fatalf("QS response time = %v", rt)
	}
	if res.BytesShipped != res.Stats.ResultTuples*TupleBytes {
		t.Fatalf("QS shipped %d bytes for %d results", res.BytesShipped, res.Stats.ResultTuples)
	}
}

func TestQSContentionDoublesResponseTime(t *testing.T) {
	// Warm the server cache first so IO doesn't blur the CPU contention.
	e, clock := testEngine(t, 64)
	warm, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Run(Query{LoA: 0, LoB: 0}, func(QueryResult) {}); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	warm.Close()

	single := runConcurrentQS(t, e, clock, 1)
	double := runConcurrentQS(t, e, clock, 2)
	ratio := double.Seconds() / single.Seconds()
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("2-client/1-client response ratio = %.2f (1: %v, 2: %v), want ~2",
			ratio, single, double)
	}
}

// runConcurrentQS runs one identical warm-cache query per client
// simultaneously and returns the mean response time.
func runConcurrentQS(t *testing.T, e *Engine, clock *simclock.Clock, clients int) time.Duration {
	t.Helper()
	var sum time.Duration
	n := 0
	var sessions []*Session
	for i := 0; i < clients; i++ {
		s, err := e.NewSession(QueryShipping, 2)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		if err := s.Run(Query{LoA: 0, LoB: 0}, func(r QueryResult) {
			sum += r.ResponseTime()
			n++
		}); err != nil {
			t.Fatal(err)
		}
	}
	clock.RunAll()
	for _, s := range sessions {
		s.Close()
	}
	if n != clients {
		t.Fatalf("completed %d queries, want %d", n, clients)
	}
	return sum / time.Duration(n)
}

func TestDSUsesClientCPUNotServer(t *testing.T) {
	e, clock := testEngine(t, 64)
	s, err := e.NewSession(DataShipping, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var res QueryResult
	if err := s.Run(Query{LoA: 0, LoB: 0}, func(r QueryResult) { res = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if res.Mode != DataShipping {
		t.Fatalf("mode = %v", res.Mode)
	}
	if res.BytesShipped != res.Stats.PageMisses*PageBytes {
		t.Fatalf("DS shipped %d bytes for %d misses", res.BytesShipped, res.Stats.PageMisses)
	}
	// Second identical query: warm client cache, nothing shipped.
	var res2 QueryResult
	if err := s.Run(Query{LoA: 0, LoB: 0}, func(r QueryResult) { res2 = r }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if res2.BytesShipped != 0 {
		t.Fatalf("warm DS shipped %d bytes", res2.BytesShipped)
	}
	if res2.ResponseTime() >= res.ResponseTime() {
		t.Fatalf("warm DS (%v) not faster than cold (%v)", res2.ResponseTime(), res.ResponseTime())
	}
}

func TestDSMemoryGrantReducesShippedBytes(t *testing.T) {
	run := func(memMB float64) int {
		e, clock := testEngine(t, 64)
		s, err := e.NewSession(DataShipping, memMB)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rng := rand.New(rand.NewSource(5))
		shipped := 0
		var loop func()
		count := 0
		loop = func() {
			if count >= 8 {
				return
			}
			count++
			q := RandomQuery(rng, testRelSize)
			if err := s.Run(q, func(r QueryResult) {
				shipped += r.BytesShipped
				loop()
			}); err != nil {
				t.Fatal(err)
			}
		}
		loop()
		clock.RunAll()
		return shipped
	}
	small := run(0.5) // 128 pages: thrashes
	large := run(16)  // 4096 pages: holds the working set
	if large >= small {
		t.Fatalf("memory grant did not reduce shipping: small=%d large=%d", small, large)
	}
}

func TestCooperativeCachingAcrossQSClients(t *testing.T) {
	e, clock := testEngine(t, 64)
	s1, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if err := s1.Run(Query{LoA: 0, LoB: 0}, func(QueryResult) {}); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	missesAfterFirst := e.ServerPoolStats().Misses
	// A different client running the same query benefits from the shared
	// pool: no new misses.
	s2, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Run(Query{LoA: 0, LoB: 0}, func(QueryResult) {}); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if got := e.ServerPoolStats().Misses; got != missesAfterFirst {
		t.Fatalf("second client caused %d new misses", got-missesAfterFirst)
	}
}

func TestSessionModeSwitchAndValidation(t *testing.T) {
	e, _ := testEngine(t, 64)
	s, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Mode() != QueryShipping {
		t.Fatal("initial mode")
	}
	if err := s.SetMode(DataShipping); err != nil || s.Mode() != DataShipping {
		t.Fatal("SetMode failed")
	}
	if err := s.SetMode(Mode(0)); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := s.SetClientMemory(8); err != nil {
		t.Fatal(err)
	}
	if err := s.SetClientMemory(-1); err == nil {
		// PoolForMemory clamps to 1 page; -1 MB still yields 1 page.
		t.Log("negative memory clamped")
	}
	if _, err := e.NewSession(Mode(0), 2); err == nil {
		t.Fatal("bad session mode accepted")
	}
	if err := s.Run(Query{}, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	s.Close()
	if err := s.Run(Query{}, func(QueryResult) {}); err == nil {
		t.Fatal("closed session ran query")
	}
	s.Close() // idempotent
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Fatal("engine without clock accepted")
	}
	clock := simclock.New()
	e, err := NewEngine(EngineConfig{Clock: clock, TuplesPerRelation: 100})
	if err != nil {
		t.Fatal(err)
	}
	if e.ActiveSessions() != 0 {
		t.Fatal("fresh engine has sessions")
	}
	s, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.ActiveSessions() != 1 {
		t.Fatal("session not counted")
	}
	s.Close()
	if e.ActiveSessions() != 0 {
		t.Fatal("session not released")
	}
}

func TestClientLoopRunsBackToBack(t *testing.T) {
	e, clock := testEngine(t, 64)
	s, err := e.NewSession(QueryShipping, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var recorded int
	loop, err := StartClientLoop(s, 11, func(QueryResult) { recorded++ })
	if err != nil {
		t.Fatal(err)
	}
	clock.Run(30 * time.Second)
	loop.Stop()
	clock.RunAll()
	results := loop.Results()
	if len(results) < 3 {
		t.Fatalf("loop completed %d queries in 30 virtual seconds", len(results))
	}
	if recorded != len(results) {
		t.Fatalf("recorded %d != results %d", recorded, len(results))
	}
	// Back-to-back: each query starts when the previous finished.
	for i := 1; i < len(results); i++ {
		if results[i].Started != results[i-1].Finished {
			t.Fatalf("query %d started %v, previous finished %v",
				i, results[i].Started, results[i-1].Finished)
		}
	}
	mean, ok := loop.MeanResponseBetween(0, 30*time.Second)
	if !ok || mean <= 0 {
		t.Fatalf("mean = %v, %v", mean, ok)
	}
	if _, ok := loop.MeanResponseBetween(1000*time.Hour, 2000*time.Hour); ok {
		t.Fatal("empty window reported ok")
	}
	if _, err := StartClientLoop(nil, 1, nil); err == nil {
		t.Fatal("nil session accepted")
	}
}

// Property: selections always return exactly n/10 tuples for in-range
// starts, and every returned tuple is within the range.
func TestPropertySelectionExact(t *testing.T) {
	r, err := MakeWisconsin("w", 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTable(r)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(1000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(loRaw uint16) bool {
		lo := int32(loRaw) % 1800
		tuples, _, err := indexSelect(tbl, pool, lo)
		if err != nil || len(tuples) != 200 {
			return false
		}
		for _, tp := range tuples {
			if tp.Unique1 < lo || tp.Unique1 >= lo+200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: pool hit+miss count equals requests, and Len never exceeds
// capacity, for arbitrary access strings.
func TestPropertyPoolInvariants(t *testing.T) {
	r, err := MakeWisconsin("w", 19*50, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(accesses []uint8, capRaw uint8) bool {
		capacity := int(capRaw%20) + 1
		p, err := NewPool(capacity)
		if err != nil {
			return false
		}
		for _, a := range accesses {
			if _, _, err := p.Get(r, int32(a)%50); err != nil {
				return false
			}
			if p.Len() > capacity {
				return false
			}
		}
		st := p.Stats()
		return st.Hits+st.Misses == int64(len(accesses))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
