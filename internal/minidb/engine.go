package minidb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"harmony/internal/procsim"
	"harmony/internal/simclock"
)

// Mode selects where queries execute (the Figure 3 bundle's two options).
type Mode int

const (
	// QueryShipping executes queries at the server (option "QS").
	QueryShipping Mode = iota + 1
	// DataShipping ships pages to the client, which executes locally
	// (option "DS").
	DataShipping
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case QueryShipping:
		return "QS"
	case DataShipping:
		return "DS"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeFromOption maps the RSL option names of Figure 3 to modes.
func ModeFromOption(name string) (Mode, error) {
	switch name {
	case "QS":
		return QueryShipping, nil
	case "DS":
		return DataShipping, nil
	}
	return 0, fmt.Errorf("minidb: unknown option %q", name)
}

// CostConfig converts physical work into virtual time. Defaults are
// calibrated so one query-shipping query on an idle server completes in
// roughly 5 virtual seconds, giving Figure 7's phase structure (≈2x at two
// clients, worse at three, DS ≈ the two-client level).
type CostConfig struct {
	// CPUPerTupleSeconds charges selection/join work per tuple or probe op.
	CPUPerTupleSeconds float64
	// DiskPerPageSeconds charges a server buffer pool miss (disk read).
	DiskPerPageSeconds float64
	// ServerPerPageServeSeconds charges the server CPU for shipping one
	// page to a data-shipping client.
	ServerPerPageServeSeconds float64
	// LinkMbps is the shared client-server switch capacity.
	LinkMbps float64
	// ClientSpeed scales client CPUs relative to the server (1.0 = equal).
	ClientSpeed float64
}

// DefaultCostConfig mirrors the SP-2 testbed proportions.
func DefaultCostConfig() CostConfig {
	return CostConfig{
		CPUPerTupleSeconds:        100e-6,
		DiskPerPageSeconds:        400e-6,
		ServerPerPageServeSeconds: 20e-6,
		LinkMbps:                  320,
		ClientSpeed:               1.0,
	}
}

// QueryResult reports one completed query.
type QueryResult struct {
	// Mode is the mode the query ran under.
	Mode Mode
	// Stats is the physical work performed.
	Stats ExecStats
	// Started and Finished are virtual timestamps.
	Started, Finished time.Duration
	// BytesShipped counts client-server transfer for this query.
	BytesShipped int
}

// ResponseTime is Finished - Started.
func (r QueryResult) ResponseTime() time.Duration { return r.Finished - r.Started }

// Engine is the simulated database server: two Wisconsin tables behind a
// shared buffer pool, a processor-sharing server CPU, and a shared link.
type Engine struct {
	clock *simclock.Clock
	cfg   CostConfig

	TableA, TableB *Table
	serverPool     *Pool
	serverCPU      *procsim.Resource
	link           *procsim.Resource

	mu       sync.Mutex
	sessions int
}

// EngineConfig parameterizes NewEngine.
type EngineConfig struct {
	// Clock drives the simulation. Required.
	Clock *simclock.Clock
	// TuplesPerRelation sizes each Wisconsin instance (paper: 100,000).
	TuplesPerRelation int
	// ServerMemoryMB sizes the server buffer pool.
	ServerMemoryMB float64
	// Costs tunes the cost model; zero value takes DefaultCostConfig.
	Costs CostConfig
	// Seed perturbs relation generation.
	Seed int64
}

// NewEngine builds the server with two freshly generated relations.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Clock == nil {
		return nil, errors.New("minidb: engine needs a clock")
	}
	if cfg.TuplesPerRelation <= 0 {
		cfg.TuplesPerRelation = 100000
	}
	if cfg.ServerMemoryMB <= 0 {
		cfg.ServerMemoryMB = 64
	}
	if cfg.Costs == (CostConfig{}) {
		cfg.Costs = DefaultCostConfig()
	}
	relA, err := MakeWisconsin("wisc_a", cfg.TuplesPerRelation, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	relB, err := MakeWisconsin("wisc_b", cfg.TuplesPerRelation, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	ta, err := NewTable(relA)
	if err != nil {
		return nil, err
	}
	tb, err := NewTable(relB)
	if err != nil {
		return nil, err
	}
	pool, err := PoolForMemory(cfg.ServerMemoryMB)
	if err != nil {
		return nil, err
	}
	cpu, err := procsim.New("db.server.cpu", cfg.Clock, 1.0)
	if err != nil {
		return nil, err
	}
	link, err := procsim.New("db.link", cfg.Clock, cfg.Costs.LinkMbps*1e6/8) // bytes/s
	if err != nil {
		return nil, err
	}
	return &Engine{
		clock:      cfg.Clock,
		cfg:        cfg.Costs,
		TableA:     ta,
		TableB:     tb,
		serverPool: pool,
		serverCPU:  cpu,
		link:       link,
	}, nil
}

// ServerPoolStats exposes the shared pool counters (cooperative caching).
func (e *Engine) ServerPoolStats() PoolStats { return e.serverPool.Stats() }

// ActiveSessions reports connected client sessions.
func (e *Engine) ActiveSessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sessions
}

// Session is one database client. Its mode is switched by Harmony variable
// updates; per the paper, in-flight queries complete under the old mode
// ("database applications usually need to complete the current query
// before reconfiguring").
type Session struct {
	engine *Engine
	id     int

	mu         sync.Mutex
	mode       Mode
	clientPool *Pool
	clientCPU  *procsim.Resource
	closed     bool
}

// NewSession attaches a client in the given mode with the given Harmony
// memory grant (sizing its private data-shipping cache).
func (e *Engine) NewSession(mode Mode, clientMemoryMB float64) (*Session, error) {
	if mode != QueryShipping && mode != DataShipping {
		return nil, fmt.Errorf("minidb: bad mode %v", mode)
	}
	pool, err := PoolForMemory(clientMemoryMB)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.sessions++
	id := e.sessions
	e.mu.Unlock()
	cpu, err := procsim.New(fmt.Sprintf("db.client%d.cpu", id), e.clock, e.cfg.ClientSpeed)
	if err != nil {
		return nil, err
	}
	return &Session{engine: e, id: id, mode: mode, clientPool: pool, clientCPU: cpu}, nil
}

// SetMode switches where the session's next query executes.
func (s *Session) SetMode(mode Mode) error {
	if mode != QueryShipping && mode != DataShipping {
		return fmt.Errorf("minidb: bad mode %v", mode)
	}
	s.mu.Lock()
	s.mode = mode
	s.mu.Unlock()
	return nil
}

// SetClientMemory resizes the private cache to a new Harmony grant; the
// cache restarts cold, as a real reconfiguration would.
func (s *Session) SetClientMemory(memoryMB float64) error {
	pool, err := PoolForMemory(memoryMB)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.clientPool = pool
	s.mu.Unlock()
	return nil
}

// Mode reports the current execution mode.
func (s *Session) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// ClientPoolStats exposes the private cache counters.
func (s *Session) ClientPoolStats() PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clientPool.Stats()
}

// Close detaches the session.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.engine.mu.Lock()
	s.engine.sessions--
	s.engine.mu.Unlock()
}

// Run executes one query asynchronously; done fires on the clock goroutine
// with the result. The mode is latched at submission.
func (s *Session) Run(q Query, done func(QueryResult)) error {
	if done == nil {
		return errors.New("minidb: nil completion callback")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("minidb: session closed")
	}
	mode := s.mode
	clientPool := s.clientPool
	clientCPU := s.clientCPU
	s.mu.Unlock()

	start := s.engine.clock.Now()
	switch mode {
	case QueryShipping:
		return s.runQS(q, start, done)
	case DataShipping:
		return s.runDS(q, start, clientPool, clientCPU, done)
	}
	return fmt.Errorf("minidb: bad mode %v", mode)
}

// runQS: execute at the server. Physical plan runs against the shared
// server pool; disk time for misses plus CPU work is charged to the shared
// server CPU; only result tuples cross the link.
func (s *Session) runQS(q Query, start time.Duration, done func(QueryResult)) error {
	e := s.engine
	stats, err := ExecuteJoin(e.TableA, e.TableB, e.serverPool, q)
	if err != nil {
		return err
	}
	cpuSeconds := float64(stats.TuplesScanned+stats.ProbeOps+stats.ResultTuples)*e.cfg.CPUPerTupleSeconds +
		float64(stats.PageMisses)*e.cfg.DiskPerPageSeconds
	resultBytes := stats.ResultTuples * TupleBytes
	// Phase 1: server CPU (shared with other QS clients — this is the
	// contention that drives Figure 7). Phase 2: ship results.
	return e.serverCPU.Submit(cpuSeconds, func(time.Duration) {
		err := e.link.Submit(float64(resultBytes), func(at time.Duration) {
			done(QueryResult{
				Mode:         QueryShipping,
				Stats:        stats,
				Started:      start,
				Finished:     at,
				BytesShipped: resultBytes,
			})
		})
		if err != nil {
			// Clock stopped mid-run; drop the query.
			_ = err
		}
	})
}

// runDS: the client identifies the pages both selections touch, fetches
// misses through its private cache (server charges a small per-page serve
// cost; pages cross the shared link), then executes locally.
func (s *Session) runDS(q Query, start time.Duration, clientPool *Pool, clientCPU *procsim.Resource, done func(QueryResult)) error {
	e := s.engine
	// Execute the plan against the client cache; every miss is a page the
	// server must ship (this is where a larger Harmony memory grant buys
	// bandwidth, the Figure 3 tradeoff).
	stats, err := ExecuteJoin(e.TableA, e.TableB, clientPool, q)
	if err != nil {
		return err
	}
	missPages := stats.PageMisses
	shipBytes := missPages * PageBytes
	clientSeconds := float64(stats.TuplesScanned+stats.ProbeOps+stats.ResultTuples) * e.cfg.CPUPerTupleSeconds
	serveSeconds := float64(missPages) * e.cfg.ServerPerPageServeSeconds

	// Phase 1: server serves pages (small). Phase 2: pages cross the link
	// (shared). Phase 3: client executes on its private CPU.
	return e.serverCPU.Submit(serveSeconds, func(time.Duration) {
		lerr := e.link.Submit(float64(shipBytes), func(time.Duration) {
			cerr := clientCPU.Submit(clientSeconds, func(at time.Duration) {
				done(QueryResult{
					Mode:         DataShipping,
					Stats:        stats,
					Started:      start,
					Finished:     at,
					BytesShipped: shipBytes,
				})
			})
			_ = cerr
		})
		_ = lerr
	})
}
