package replog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Store persists a replica's durable state in a directory:
//
//	log.jsonl      — newline-delimited JSON entries following the snapshot
//	snapshot.json  — the latest Snapshot
//	state.json     — hard state (current term, voted-for)
//
// Writes are synchronous appends; snapshot installation rewrites the log so
// it always holds exactly the tail after the snapshot.
type Store struct {
	mu  sync.Mutex
	dir string
	log *os.File
}

// HardState is the election state a replica must remember across restarts.
type HardState struct {
	// Term is the highest term seen.
	Term uint64 `json:"term"`
	// VotedFor is the replica ID granted a vote in Term ("" if none).
	VotedFor string `json:"votedFor,omitempty"`
}

// Persisted is everything a restarting replica recovers from disk.
type Persisted struct {
	// State is the saved hard state (zero value when never saved).
	State HardState
	// Snapshot is the latest snapshot (zero value when never taken).
	Snapshot Snapshot
	// Entries is the log tail following the snapshot, in index order.
	Entries []Entry
}

// OpenStore opens (creating if needed) the store in dir and loads whatever
// state it holds. A truncated trailing log line (torn write from a crash)
// is dropped; any entry breaking index contiguity ends the recovered tail.
func OpenStore(dir string) (*Store, *Persisted, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("replog: open store: %w", err)
	}
	st := &Store{dir: dir}
	p := &Persisted{}
	if err := readJSONFile(filepath.Join(dir, "state.json"), &p.State); err != nil {
		return nil, nil, err
	}
	if err := readJSONFile(filepath.Join(dir, "snapshot.json"), &p.Snapshot); err != nil {
		return nil, nil, err
	}
	entries, err := readLogFile(filepath.Join(dir, "log.jsonl"), p.Snapshot.Index)
	if err != nil {
		return nil, nil, err
	}
	p.Entries = entries
	f, err := os.OpenFile(filepath.Join(dir, "log.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("replog: open log: %w", err)
	}
	st.log = f
	return st, p, nil
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("replog: read %s: %w", filepath.Base(path), err)
	}
	if len(data) == 0 {
		return nil
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("replog: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}

func readLogFile(path string, snapIndex uint64) ([]Entry, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("replog: read log: %w", err)
	}
	defer f.Close()
	var entries []Entry
	next := snapIndex + 1
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn trailing write: keep what decoded cleanly
		}
		if e.Index <= snapIndex {
			continue // covered by the snapshot after a non-rewritten install
		}
		if e.Index != next {
			break // gap or stale suffix: stop at the contiguous prefix
		}
		entries = append(entries, e)
		next++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replog: scan log: %w", err)
	}
	return entries, nil
}

// AppendEntries durably appends entries to the log file.
func (s *Store) AppendEntries(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for i := range entries {
		line, err := json.Marshal(&entries[i])
		if err != nil {
			return fmt.Errorf("replog: encode entry %d: %w", entries[i].Index, err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if _, err := s.log.Write(buf); err != nil {
		return fmt.Errorf("replog: append log: %w", err)
	}
	return s.log.Sync()
}

// RewriteLog atomically replaces the log file with the given entries (used
// after a follower truncates a conflicting suffix or installs a snapshot).
func (s *Store) RewriteLog(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, "log.jsonl.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("replog: rewrite log: %w", err)
	}
	w := bufio.NewWriter(f)
	for i := range entries {
		line, err := json.Marshal(&entries[i])
		if err != nil {
			f.Close()
			return fmt.Errorf("replog: encode entry %d: %w", entries[i].Index, err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("replog: rewrite log: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("replog: rewrite log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replog: rewrite log: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "log.jsonl")); err != nil {
		return fmt.Errorf("replog: rewrite log: %w", err)
	}
	old := s.log
	nf, err := os.OpenFile(filepath.Join(s.dir, "log.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("replog: reopen log: %w", err)
	}
	s.log = nf
	old.Close()
	return nil
}

// SaveHardState durably records term and vote (atomic rename).
func (s *Store) SaveHardState(hs HardState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeJSONFile(s.dir, "state.json", &hs)
}

// SaveSnapshot durably records the snapshot, then rewrites the log to the
// remaining tail so replay stays bounded.
func (s *Store) SaveSnapshot(snap Snapshot, tail []Entry) error {
	s.mu.Lock()
	if err := writeJSONFile(s.dir, "snapshot.json", &snap); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return s.RewriteLog(tail)
}

func writeJSONFile(dir, name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("replog: encode %s: %w", name, err)
	}
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("replog: write %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("replog: write %s: %w", name, err)
	}
	return nil
}

// Close releases the log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}
