// Package replog defines the replicated event log that turns the Harmony
// controller into a deterministic state machine: every ledger-mutating
// operation (admission, release, re-evaluation, node lifecycle, session
// park/resume) is factored into a serializable Entry, so a follower
// replaying the same entries against the same cluster reconstructs a
// bit-identical resource ledger. The log carries the Raft-style metadata
// (index, term, commit point) the replica layer in internal/server needs
// for leader election and log shipping, plus an optional file-backed Store
// so a restarted replica resumes from its latest snapshot and log tail.
//
// The package is deliberately dependency-free (standard library only, no
// other harmony packages): protocol, core and server all import it.
package replog

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Op enumerates the state-machine operations a log entry can carry.
type Op string

// Controller operations (applied via core.Controller.Apply).
const (
	// OpRegister admits a bundle: RSL holds the script, Token optionally
	// binds the new instance to a client session.
	OpRegister Op = "register"
	// OpUnregister releases an instance (harmony_end or session expiry).
	OpUnregister Op = "unregister"
	// OpReevaluate runs one optimizer pass.
	OpReevaluate Op = "reevaluate"
	// OpForceChoice imposes a configuration on Instance.
	OpForceChoice Op = "force_choice"
	// OpNodeState transitions Hostname to State (up, draining, down).
	OpNodeState Op = "node_state"
)

// Session operations (applied to the replicated session table so resume
// tokens and leases survive failover).
const (
	// OpSessionStart records a session: the leader mints Token at propose
	// time, so the non-deterministic randomness is captured in the entry.
	OpSessionStart Op = "session_start"
	// OpSessionVar records a declared Harmony variable for replay on resume.
	OpSessionVar Op = "session_var"
	// OpSessionPark marks a session disconnected; the lease grace window
	// runs on the leader's wall clock, but the decision is replicated.
	OpSessionPark Op = "session_park"
	// OpSessionResume re-binds a parked (or stolen) session to a new
	// connection on the current leader.
	OpSessionResume Op = "session_resume"
	// OpSessionExpire ends a session whose grace lapsed: appliers
	// unregister every bound instance deterministically.
	OpSessionExpire Op = "session_expire"
)

// Choice mirrors core.Choice as plain serializable data (replog cannot
// import core; core converts).
type Choice struct {
	// Option is the chosen option name.
	Option string `json:"option"`
	// Vars binds option variables to values.
	Vars map[string]float64 `json:"vars,omitempty"`
	// Grants raises OpMin memory tags, keyed by option-local node name.
	Grants map[string]float64 `json:"grants,omitempty"`
}

// Entry is one replicated state-machine command. Index and Term are
// assigned by the leader at append time; Time is the virtual instant the
// operation executes at, pinned in the entry so followers apply with the
// leader's clock rather than their own.
type Entry struct {
	// Index is the entry's position in the log (1-based).
	Index uint64 `json:"index"`
	// Term is the leader term that appended the entry.
	Term uint64 `json:"term"`
	// Time is the virtual time of the operation.
	Time time.Duration `json:"time"`
	// Op discriminates the operation.
	Op Op `json:"op"`

	// AppID names the program (OpSessionStart).
	AppID string `json:"appId,omitempty"`
	// RSL carries the bundle script (OpRegister).
	RSL string `json:"rsl,omitempty"`
	// Instance targets an existing registration (OpUnregister,
	// OpForceChoice).
	Instance int `json:"instance,omitempty"`
	// Choice carries the imposed configuration (OpForceChoice).
	Choice *Choice `json:"choice,omitempty"`
	// Hostname and State carry a node transition (OpNodeState).
	Hostname string `json:"hostname,omitempty"`
	State    string `json:"state,omitempty"`
	// Token identifies the client session for session ops and OpRegister.
	Token string `json:"token,omitempty"`
	// Name/NumValue/StrValue/IsString carry a variable declaration
	// (OpSessionVar), mirroring protocol.VarValue.
	Name     string  `json:"name,omitempty"`
	NumValue float64 `json:"numValue,omitempty"`
	StrValue string  `json:"strValue,omitempty"`
	IsString bool    `json:"isString,omitempty"`
}

// Snapshot is a compact prefix of the log: the serialized state machine as
// of Index, letting the log be truncated and lagging or restarted replicas
// catch up without full replay.
type Snapshot struct {
	// Index is the last log index folded into the snapshot.
	Index uint64 `json:"index"`
	// Term is the term of that entry.
	Term uint64 `json:"term"`
	// Time is the virtual time as of the snapshot.
	Time time.Duration `json:"time"`
	// Data is the opaque serialized state (the server composes controller
	// state and the session table).
	Data []byte `json:"data"`
}

// Errors reported by the log.
var (
	// ErrCompacted is returned when requesting entries already folded into
	// the snapshot.
	ErrCompacted = errors.New("replog: index compacted into snapshot")
	// ErrOutOfRange is returned for indexes past the end of the log.
	ErrOutOfRange = errors.New("replog: index out of range")
)

// Log is the in-memory replicated log: a contiguous run of entries
// starting just after the latest snapshot, plus the commit point. It is
// safe for concurrent use.
type Log struct {
	mu sync.Mutex
	// entries[i] has Index == snap.Index + 1 + i.
	entries []Entry
	snap    Snapshot // zero value: empty snapshot at index 0
	commit  uint64
}

// NewLog returns an empty log (first entry will be index 1).
func NewLog() *Log { return &Log{} }

// firstIndexLocked is the index of entries[0] (snapshot index + 1).
func (l *Log) firstIndexLocked() uint64 { return l.snap.Index + 1 }

// LastIndex reports the index of the newest entry (snapshot index when the
// tail is empty, 0 for a virgin log).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastIndexLocked()
}

func (l *Log) lastIndexLocked() uint64 {
	if n := len(l.entries); n > 0 {
		return l.entries[n-1].Index
	}
	return l.snap.Index
}

// LastTerm reports the term of the newest entry (snapshot term when the
// tail is empty).
func (l *Log) LastTerm() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.entries); n > 0 {
		return l.entries[n-1].Term
	}
	return l.snap.Term
}

// LastTime reports the virtual time of the newest entry, so leaders mint
// non-decreasing entry times across elections.
func (l *Log) LastTime() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.entries); n > 0 {
		return l.entries[n-1].Time
	}
	return l.snap.Time
}

// Term reports the term of the entry at index (the snapshot term at the
// snapshot boundary).
func (l *Log) Term(index uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index == l.snap.Index {
		return l.snap.Term, nil
	}
	if index < l.firstIndexLocked() {
		return 0, ErrCompacted
	}
	if index > l.lastIndexLocked() {
		return 0, ErrOutOfRange
	}
	return l.entries[index-l.firstIndexLocked()].Term, nil
}

// Append assigns the next index to e and appends it (leader path). The
// entry's Term and Time must already be set. It returns the assigned index.
func (l *Log) Append(e *Entry) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Index = l.lastIndexLocked() + 1
	l.entries = append(l.entries, *e)
	return e.Index
}

// TryAppend implements the follower-side consistency check: it accepts
// entries following (prevIndex, prevTerm) when the local log matches that
// point, truncating any conflicting suffix. It reports whether the append
// was accepted.
func (l *Log) TryAppend(prevIndex, prevTerm uint64, entries []Entry) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case prevIndex == l.snap.Index:
		if prevTerm != l.snap.Term {
			return false
		}
	case prevIndex < l.snap.Index:
		// The prefix is already folded into the snapshot: skip entries the
		// snapshot covers and accept the rest.
		for len(entries) > 0 && entries[0].Index <= l.snap.Index {
			entries = entries[1:]
		}
	default:
		if prevIndex > l.lastIndexLocked() {
			return false
		}
		if l.entries[prevIndex-l.firstIndexLocked()].Term != prevTerm {
			return false
		}
	}
	for _, e := range entries {
		if e.Index <= l.lastIndexLocked() {
			have := l.entries[e.Index-l.firstIndexLocked()]
			if have.Term == e.Term {
				continue // already present
			}
			// Conflict: a newer leader overwrites the divergent suffix.
			l.entries = l.entries[:e.Index-l.firstIndexLocked()]
		}
		l.entries = append(l.entries, e)
	}
	return true
}

// EntriesFrom returns a copy of the entries at index and beyond.
func (l *Log) EntriesFrom(index uint64) ([]Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index < l.firstIndexLocked() {
		return nil, ErrCompacted
	}
	if index > l.lastIndexLocked() {
		return nil, nil
	}
	return append([]Entry(nil), l.entries[index-l.firstIndexLocked():]...), nil
}

// Entry returns a copy of the entry at index.
func (l *Log) Entry(index uint64) (Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index < l.firstIndexLocked() {
		return Entry{}, ErrCompacted
	}
	if index > l.lastIndexLocked() {
		return Entry{}, ErrOutOfRange
	}
	return l.entries[index-l.firstIndexLocked()], nil
}

// Commit reports the commit point.
func (l *Log) Commit() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// SetCommit raises the commit point (never lowers it) and clamps it to the
// last appended index. It returns the resulting commit point.
func (l *Log) SetCommit(index uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if last := l.lastIndexLocked(); index > last {
		index = last
	}
	if index > l.commit {
		l.commit = index
	}
	return l.commit
}

// Snapshot returns the latest snapshot (zero value when none was taken).
func (l *Log) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// CompactTo installs a snapshot and drops the entries it covers. A
// snapshot older than the current one is ignored; a snapshot past the end
// of the log (from a leader installing state on a lagging follower)
// replaces the log wholesale.
func (l *Log) CompactTo(snap Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if snap.Index <= l.snap.Index {
		return
	}
	if snap.Index >= l.lastIndexLocked() {
		l.entries = nil
	} else {
		keep := l.entries[snap.Index-l.firstIndexLocked()+1:]
		l.entries = append([]Entry(nil), keep...)
	}
	l.snap = snap
	if snap.Index > l.commit {
		l.commit = snap.Index
	}
}

// Restore initializes the log from persisted state: snapshot (possibly
// zero) plus the contiguous tail that follows it.
func (l *Log) Restore(snap Snapshot, tail []Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := snap.Index + 1
	for _, e := range tail {
		if e.Index != next {
			return fmt.Errorf("replog: restore: entry index %d, want %d", e.Index, next)
		}
		next++
	}
	l.snap = snap
	l.entries = append([]Entry(nil), tail...)
	l.commit = snap.Index
	return nil
}
