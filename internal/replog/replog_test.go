package replog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func entry(index, term uint64, op Op) Entry {
	return Entry{Index: index, Term: term, Op: op, Time: time.Duration(index) * time.Second}
}

func TestAppendAssignsIndexes(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 3; i++ {
		e := Entry{Term: 1, Op: OpReevaluate}
		if got := l.Append(&e); got != uint64(i) {
			t.Fatalf("append %d: index %d", i, got)
		}
	}
	if l.LastIndex() != 3 || l.LastTerm() != 1 {
		t.Fatalf("last = (%d, %d), want (3, 1)", l.LastIndex(), l.LastTerm())
	}
}

func TestTryAppendConsistency(t *testing.T) {
	l := NewLog()
	if !l.TryAppend(0, 0, []Entry{entry(1, 1, OpReevaluate), entry(2, 1, OpReevaluate)}) {
		t.Fatal("initial append rejected")
	}
	// Mismatched prev term must be rejected.
	if l.TryAppend(2, 9, []Entry{entry(3, 9, OpReevaluate)}) {
		t.Fatal("append with wrong prev term accepted")
	}
	// Gap must be rejected.
	if l.TryAppend(5, 1, []Entry{entry(6, 1, OpReevaluate)}) {
		t.Fatal("append past end accepted")
	}
	// Duplicate delivery is idempotent.
	if !l.TryAppend(0, 0, []Entry{entry(1, 1, OpReevaluate), entry(2, 1, OpReevaluate)}) {
		t.Fatal("duplicate append rejected")
	}
	if l.LastIndex() != 2 {
		t.Fatalf("last index %d after duplicate, want 2", l.LastIndex())
	}
	// Conflicting suffix is truncated and replaced.
	if !l.TryAppend(1, 1, []Entry{entry(2, 2, OpNodeState), entry(3, 2, OpReevaluate)}) {
		t.Fatal("conflicting append rejected")
	}
	got, err := l.Entry(2)
	if err != nil || got.Term != 2 || got.Op != OpNodeState {
		t.Fatalf("entry 2 = %+v, %v; want term-2 node_state", got, err)
	}
	if l.LastIndex() != 3 {
		t.Fatalf("last index %d, want 3", l.LastIndex())
	}
}

func TestCommitMonotonicClamped(t *testing.T) {
	l := NewLog()
	l.Append(&Entry{Term: 1, Op: OpReevaluate})
	if got := l.SetCommit(5); got != 1 {
		t.Fatalf("commit clamped to %d, want 1", got)
	}
	if got := l.SetCommit(0); got != 1 {
		t.Fatalf("commit lowered to %d, want 1", got)
	}
}

func TestCompactAndTermAtBoundary(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append(&Entry{Term: 1, Op: OpReevaluate})
	}
	l.CompactTo(Snapshot{Index: 3, Term: 1, Time: 3 * time.Second})
	if _, err := l.EntriesFrom(2); err != ErrCompacted {
		t.Fatalf("EntriesFrom(2) err = %v, want ErrCompacted", err)
	}
	if tm, err := l.Term(3); err != nil || tm != 1 {
		t.Fatalf("Term(3) = %d, %v; want snapshot term 1", tm, err)
	}
	rest, err := l.EntriesFrom(4)
	if err != nil || len(rest) != 2 {
		t.Fatalf("EntriesFrom(4) = %d entries, %v; want 2", len(rest), err)
	}
	if l.Commit() != 3 {
		t.Fatalf("commit %d after compaction, want 3", l.Commit())
	}
	// A snapshot at/past the end wipes the tail.
	l.CompactTo(Snapshot{Index: 9, Term: 2})
	if l.LastIndex() != 9 || l.LastTerm() != 2 {
		t.Fatalf("after wholesale compaction last = (%d, %d), want (9, 2)", l.LastIndex(), l.LastTerm())
	}
	// Stale snapshots are ignored.
	l.CompactTo(Snapshot{Index: 4, Term: 1})
	if l.Snapshot().Index != 9 {
		t.Fatalf("stale snapshot replaced newer one")
	}
}

func TestTryAppendAcrossSnapshot(t *testing.T) {
	l := NewLog()
	l.CompactTo(Snapshot{Index: 3, Term: 1})
	// Entries overlapping the snapshot are skipped, the rest accepted.
	if !l.TryAppend(2, 1, []Entry{entry(3, 1, OpReevaluate), entry(4, 1, OpNodeState)}) {
		t.Fatal("append overlapping snapshot rejected")
	}
	if l.LastIndex() != 4 {
		t.Fatalf("last index %d, want 4", l.LastIndex())
	}
}

func TestRestoreValidatesContiguity(t *testing.T) {
	l := NewLog()
	snap := Snapshot{Index: 2, Term: 1}
	if err := l.Restore(snap, []Entry{entry(3, 1, OpReevaluate), entry(5, 1, OpReevaluate)}); err == nil {
		t.Fatal("gap in restore tail accepted")
	}
	if err := l.Restore(snap, []Entry{entry(3, 1, OpReevaluate)}); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if l.LastIndex() != 3 || l.Commit() != 2 {
		t.Fatalf("restore: last %d commit %d, want 3/2", l.LastIndex(), l.Commit())
	}
}

func TestEntryJSONRoundTrip(t *testing.T) {
	e := Entry{
		Index: 7, Term: 2, Time: 90 * time.Second, Op: OpForceChoice,
		Instance: 3,
		Choice: &Choice{
			Option: "replicated",
			Vars:   map[string]float64{"n": 4},
			Grants: map[string]float64{"node0": 512},
		},
	}
	data, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	var got Entry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", e, got)
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, p, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.State.Term != 0 || p.Snapshot.Index != 0 || len(p.Entries) != 0 {
		t.Fatalf("fresh store not empty: %+v", p)
	}
	if err := st.SaveHardState(HardState{Term: 3, VotedFor: "r2"}); err != nil {
		t.Fatal(err)
	}
	tail := []Entry{entry(1, 1, OpReevaluate), entry(2, 2, OpNodeState), entry(3, 3, OpReevaluate)}
	if err := st.AppendEntries(tail); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, p, err = OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.State.Term != 3 || p.State.VotedFor != "r2" {
		t.Fatalf("hard state = %+v", p.State)
	}
	if !reflect.DeepEqual(p.Entries, tail) {
		t.Fatalf("entries = %+v, want %+v", p.Entries, tail)
	}

	// Snapshot + rewrite: only the tail past the snapshot survives.
	snap := Snapshot{Index: 2, Term: 2, Data: []byte(`{"x":1}`)}
	if err := st.SaveSnapshot(snap, tail[2:]); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEntries([]Entry{entry(4, 3, OpReevaluate)}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, p, err = OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !reflect.DeepEqual(p.Snapshot, snap) {
		t.Fatalf("snapshot = %+v, want %+v", p.Snapshot, snap)
	}
	if len(p.Entries) != 2 || p.Entries[0].Index != 3 || p.Entries[1].Index != 4 {
		t.Fatalf("tail after snapshot = %+v", p.Entries)
	}
}

func TestStoreDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEntries([]Entry{entry(1, 1, OpReevaluate), entry(2, 1, OpReevaluate)}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a crash mid-append: a truncated trailing line.
	f, err := os.OpenFile(filepath.Join(dir, "log.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"index":3,"term":1,"op":"reev`)
	f.Close()

	st, p, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(p.Entries) != 2 {
		t.Fatalf("recovered %d entries, want 2 (torn line dropped)", len(p.Entries))
	}
}
