package procsim

import (
	"testing"
	"time"

	"harmony/internal/simclock"
)

func BenchmarkSubmitComplete(b *testing.B) {
	clock := simclock.New()
	r, err := New("cpu", clock, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Submit(1, func(time.Duration) {}); err != nil {
			b.Fatal(err)
		}
		clock.RunAll()
	}
}

func BenchmarkConcurrentJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clock := simclock.New()
		r, err := New("cpu", clock, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 32; j++ {
			if err := r.Submit(float64(j+1), func(time.Duration) {}); err != nil {
				b.Fatal(err)
			}
		}
		clock.RunAll()
	}
}
