package procsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"harmony/internal/simclock"
)

func mustResource(t *testing.T, clock *simclock.Clock, capacity float64) *Resource {
	t.Helper()
	r, err := New("cpu", clock, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	clock := simclock.New()
	r := mustResource(t, clock, 2.0) // double-speed CPU
	var doneAt time.Duration
	if err := r.Submit(10, func(at time.Duration) { doneAt = at }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if doneAt != 5*time.Second {
		t.Fatalf("done at %v, want 5s (10 units / 2 units-per-s)", doneAt)
	}
}

func TestTwoEqualJobsShare(t *testing.T) {
	clock := simclock.New()
	r := mustResource(t, clock, 1.0)
	var t1, t2 time.Duration
	if err := r.Submit(10, func(at time.Duration) { t1 = at }); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(10, func(at time.Duration) { t2 = at }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	// Both share: each progresses at 0.5/s, both finish at 20 s.
	if t1 != 20*time.Second || t2 != 20*time.Second {
		t.Fatalf("completions %v, %v, want 20s each", t1, t2)
	}
}

func TestShortJobLeavesLongJobAccelerates(t *testing.T) {
	clock := simclock.New()
	r := mustResource(t, clock, 1.0)
	var tShort, tLong time.Duration
	if err := r.Submit(5, func(at time.Duration) { tShort = at }); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(15, func(at time.Duration) { tLong = at }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	// Shared until short finishes: short needs 5 units at 0.5/s -> 10 s.
	// Long then has 15-5=10 units left at full speed -> finishes at 20 s.
	if tShort != 10*time.Second {
		t.Fatalf("short done at %v, want 10s", tShort)
	}
	if tLong != 20*time.Second {
		t.Fatalf("long done at %v, want 20s", tLong)
	}
}

func TestLateArrivalSlowsInProgress(t *testing.T) {
	clock := simclock.New()
	r := mustResource(t, clock, 1.0)
	var tFirst time.Duration
	if err := r.Submit(10, func(at time.Duration) { tFirst = at }); err != nil {
		t.Fatal(err)
	}
	// Second job arrives at t=5 with the first half done.
	if _, err := clock.ScheduleAt(5*time.Second, func(time.Duration) {
		if err := r.Submit(100, func(time.Duration) {}); err != nil {
			t.Errorf("late submit: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	// First job: 5 units at full speed (0-5s), 5 units at half speed
	// (5-15s) -> done at 15 s.
	if tFirst != 15*time.Second {
		t.Fatalf("first done at %v, want 15s", tFirst)
	}
}

func TestZeroDemandCompletesNow(t *testing.T) {
	clock := simclock.New()
	clock.AdvanceTo(7 * time.Second)
	r := mustResource(t, clock, 1.0)
	var at time.Duration
	if err := r.Submit(0, func(a time.Duration) { at = a }); err != nil {
		t.Fatal(err)
	}
	clock.RunAll()
	if at != 7*time.Second {
		t.Fatalf("zero-demand done at %v, want 7s", at)
	}
}

func TestSubmitValidation(t *testing.T) {
	clock := simclock.New()
	r := mustResource(t, clock, 1.0)
	if err := r.Submit(-1, func(time.Duration) {}); err == nil {
		t.Fatal("negative demand accepted")
	}
	if err := r.Submit(math.NaN(), func(time.Duration) {}); err == nil {
		t.Fatal("NaN demand accepted")
	}
	if err := r.Submit(1, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, 1); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New("x", simclock.New(), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestActiveAndUtilization(t *testing.T) {
	clock := simclock.New()
	r := mustResource(t, clock, 1.0)
	if r.Active() != 0 || r.Utilization() != 0 {
		t.Fatal("idle resource reports activity")
	}
	if err := r.Submit(10, func(time.Duration) {}); err != nil {
		t.Fatal(err)
	}
	if r.Active() != 1 || r.Utilization() != 1 {
		t.Fatal("active resource reports idle")
	}
	clock.RunAll()
	if r.Active() != 0 {
		t.Fatal("drained resource still active")
	}
}

func TestGroup(t *testing.T) {
	clock := simclock.New()
	g, err := NewGroup(clock)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := g.Add("cpu.sp2-01", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Get("cpu.sp2-01") != cpu {
		t.Fatal("Get mismatch")
	}
	if g.Get("missing") != nil {
		t.Fatal("missing resource non-nil")
	}
	if _, err := g.Add("cpu.sp2-01", 2.0); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := g.Add("bad", -1); err == nil {
		t.Fatal("bad capacity accepted")
	}
	if _, err := NewGroup(nil); err == nil {
		t.Fatal("nil clock group accepted")
	}
	if cpu.Name() != "cpu.sp2-01" {
		t.Fatal("Name mismatch")
	}
}

// Property: total work conservation — for any set of jobs submitted at t=0,
// the last completion equals total demand / capacity.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(demandsRaw []uint16) bool {
		if len(demandsRaw) == 0 || len(demandsRaw) > 32 {
			return true
		}
		clock := simclock.New()
		r, err := New("cpu", clock, 1.0)
		if err != nil {
			return false
		}
		total := 0.0
		var last time.Duration
		for _, d := range demandsRaw {
			demand := float64(d%1000) / 10
			total += demand
			if err := r.Submit(demand, func(at time.Duration) {
				if at > last {
					last = at
				}
			}); err != nil {
				return false
			}
		}
		clock.RunAll()
		want := time.Duration(total * float64(time.Second))
		diff := last - want
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: completions are ordered by demand when all jobs start together.
func TestPropertySmallerFinishesFirst(t *testing.T) {
	f := func(a, b uint16) bool {
		clock := simclock.New()
		r, err := New("cpu", clock, 1.0)
		if err != nil {
			return false
		}
		da, db := float64(a)+1, float64(b)+1
		var ta, tb time.Duration
		if err := r.Submit(da, func(at time.Duration) { ta = at }); err != nil {
			return false
		}
		if err := r.Submit(db, func(at time.Duration) { tb = at }); err != nil {
			return false
		}
		clock.RunAll()
		if da < db {
			return ta <= tb
		}
		if db < da {
			return tb <= ta
		}
		return ta == tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
