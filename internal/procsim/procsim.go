// Package procsim provides discrete-event processor-sharing resources over
// the virtual clock: CPUs and network links whose concurrent jobs share
// capacity equally. The paper's testbed behaviour — response times that
// double when two clients share the database server, and communication that
// slows under switch contention — emerges from these resources during
// simulated experiment runs (Figures 4 and 7).
package procsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"harmony/internal/simclock"
)

// Resource is a processor-sharing server: jobs carry a demand in
// capacity-seconds, and all active jobs progress at rate capacity/n. A CPU
// of speed 2.0 with three active jobs advances each at 2/3 demand-units per
// second; a 320 Mbit/s link with two transfers moves each at 160 Mbit/s.
type Resource struct {
	name     string
	clock    *simclock.Clock
	capacity float64

	mu      sync.Mutex
	jobs    map[uint64]*psJob
	nextID  uint64
	lastUpd time.Duration
	timer   simclock.EventID
	armed   bool
}

type psJob struct {
	id        uint64
	remaining float64
	done      func(at time.Duration)
}

// New builds a resource on the clock with the given capacity (units per
// virtual second).
func New(name string, clock *simclock.Clock, capacity float64) (*Resource, error) {
	if clock == nil {
		return nil, errors.New("procsim: nil clock")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("procsim: capacity %g must be positive", capacity)
	}
	return &Resource{
		name:     name,
		clock:    clock,
		capacity: capacity,
		jobs:     make(map[uint64]*psJob),
	}, nil
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Active reports the number of in-flight jobs.
func (r *Resource) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// Submit enqueues a job of the given demand; done fires on the clock
// goroutine when the job completes. Zero-demand jobs complete at the
// current instant (via an immediate event).
func (r *Resource) Submit(demand float64, done func(at time.Duration)) error {
	if demand < 0 || math.IsNaN(demand) {
		return fmt.Errorf("procsim: bad demand %g", demand)
	}
	if done == nil {
		return errors.New("procsim: nil completion callback")
	}
	r.mu.Lock()
	now := r.clock.Now()
	r.advanceLocked(now)
	r.nextID++
	r.jobs[r.nextID] = &psJob{id: r.nextID, remaining: demand, done: done}
	err := r.rescheduleLocked(now)
	r.mu.Unlock()
	return err
}

// advanceLocked applies progress accrued since the last update.
func (r *Resource) advanceLocked(now time.Duration) {
	n := len(r.jobs)
	if n > 0 && now > r.lastUpd {
		rate := r.capacity / float64(n)
		progress := rate * (now - r.lastUpd).Seconds()
		for _, j := range r.jobs {
			j.remaining -= progress
			if j.remaining < 0 {
				j.remaining = 0
			}
		}
	}
	r.lastUpd = now
}

// rescheduleLocked (re)arms the completion timer for the job that will
// finish soonest.
func (r *Resource) rescheduleLocked(now time.Duration) error {
	if r.armed {
		r.clock.Cancel(r.timer)
		r.armed = false
	}
	if len(r.jobs) == 0 {
		return nil
	}
	minRemaining := math.Inf(1)
	for _, j := range r.jobs {
		if j.remaining < minRemaining {
			minRemaining = j.remaining
		}
	}
	rate := r.capacity / float64(len(r.jobs))
	// Round the delay up to a whole nanosecond so the timer never fires
	// before the leading job's demand has fully drained (a floor here would
	// spin on zero-length events).
	delay := time.Duration(math.Ceil(minRemaining / rate * float64(time.Second)))
	id, err := r.clock.ScheduleAt(now+delay, r.onTimer)
	if err != nil {
		if errors.Is(err, simclock.ErrStopped) {
			return nil
		}
		return fmt.Errorf("procsim: %s: %w", r.name, err)
	}
	r.timer = id
	r.armed = true
	return nil
}

// onTimer completes every job whose demand has drained.
func (r *Resource) onTimer(now time.Duration) {
	r.mu.Lock()
	r.armed = false
	r.advanceLocked(now)
	var finished []*psJob
	for id, j := range r.jobs {
		// Nanosecond timer granularity leaves sub-epsilon residues; treat
		// anything below one capacity-nanosecond as complete.
		if j.remaining <= r.capacity*1e-9 {
			finished = append(finished, j)
			delete(r.jobs, id)
		}
	}
	_ = r.rescheduleLocked(now)
	r.mu.Unlock()
	for _, j := range finished {
		j.done(now)
	}
}

// Utilization reports active jobs / 1 (a PS resource is saturated whenever
// any job is active); exposed for sensors.
func (r *Resource) Utilization() float64 {
	if r.Active() > 0 {
		return 1
	}
	return 0
}

// Group is a convenience set of named resources (e.g. one CPU per cluster
// node plus one shared switch link).
type Group struct {
	mu        sync.Mutex
	resources map[string]*Resource
	clock     *simclock.Clock
}

// NewGroup builds an empty group over the clock.
func NewGroup(clock *simclock.Clock) (*Group, error) {
	if clock == nil {
		return nil, errors.New("procsim: nil clock")
	}
	return &Group{resources: make(map[string]*Resource), clock: clock}, nil
}

// Add registers a resource with the given capacity; duplicate names fail.
func (g *Group) Add(name string, capacity float64) (*Resource, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.resources[name]; dup {
		return nil, fmt.Errorf("procsim: duplicate resource %q", name)
	}
	r, err := New(name, g.clock, capacity)
	if err != nil {
		return nil, err
	}
	g.resources[name] = r
	return r, nil
}

// Get returns a registered resource, or nil.
func (g *Group) Get(name string) *Resource {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.resources[name]
}
