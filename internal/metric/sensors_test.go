package metric

import (
	"testing"
	"time"

	"harmony/internal/cluster"
	"harmony/internal/resource"
)

func TestClusterSensors(t *testing.T) {
	cl, err := cluster.NewSP2(3)
	if err != nil {
		t.Fatal(err)
	}
	sensors, err := ClusterSensors(cl)
	if err != nil {
		t.Fatal(err)
	}
	// 2 per node (memory + load) + C(3,2)=3 links + 1 switch = 10.
	if len(sensors) != 10 {
		t.Fatalf("sensors = %d, want 10", len(sensors))
	}
	bus := NewBus(0)
	if err := Poll(bus, time.Second, sensors); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	s, ok := bus.Last("node.sp2-01.freeMemoryMB")
	if !ok || s.Value != 128 {
		t.Fatalf("free memory sample = %+v, %v", s, ok)
	}
	if s, ok := bus.Last("switch.utilization"); !ok || s.Value != 0 {
		t.Fatalf("switch sample = %+v, %v", s, ok)
	}

	// Reserve resources; the next poll reflects them.
	if _, err := cl.Ledger().Reserve("x",
		[]resource.NodeClaim{{Hostname: "sp2-01", MemoryMB: 28, CPULoad: 1.5}},
		[]resource.LinkClaim{{A: "sp2-01", B: "sp2-02", BandwidthMbps: 160}},
	); err != nil {
		t.Fatal(err)
	}
	if err := Poll(bus, 2*time.Second, sensors); err != nil {
		t.Fatal(err)
	}
	if s, _ := bus.Last("node.sp2-01.freeMemoryMB"); s.Value != 100 {
		t.Fatalf("free memory after claim = %g", s.Value)
	}
	if s, _ := bus.Last("node.sp2-01.cpuLoad"); s.Value != 1.5 {
		t.Fatalf("cpu load = %g", s.Value)
	}
	if s, _ := bus.Last("link.sp2-01.sp2-02.reservedMbps"); s.Value != 160 {
		t.Fatalf("link reservation = %g", s.Value)
	}
	if s, _ := bus.Last("switch.utilization"); s.Value != 0.5 {
		t.Fatalf("switch utilization = %g", s.Value)
	}
}

func TestClusterSensorsNil(t *testing.T) {
	if _, err := ClusterSensors(nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
}
