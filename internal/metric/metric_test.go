package metric

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestReportAndLast(t *testing.T) {
	b := NewBus(0)
	if err := b.ReportValue("app.rt", 5, time.Second); err != nil {
		t.Fatalf("ReportValue: %v", err)
	}
	if err := b.ReportValue("app.rt", 7, 2*time.Second); err != nil {
		t.Fatalf("ReportValue: %v", err)
	}
	s, ok := b.Last("app.rt")
	if !ok || s.Value != 7 || s.At != 2*time.Second {
		t.Fatalf("Last = %+v, %v", s, ok)
	}
	if _, ok := b.Last("missing"); ok {
		t.Fatal("Last on missing metric reported ok")
	}
}

func TestReportEmptyNameFails(t *testing.T) {
	b := NewBus(0)
	if err := b.Report(Sample{}); err == nil {
		t.Fatal("empty-name sample accepted")
	}
}

func TestHistoryLimit(t *testing.T) {
	b := NewBus(3)
	for i := 0; i < 10; i++ {
		if err := b.ReportValue("m", float64(i), time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	w := b.Window("m", 0)
	if len(w) != 3 || w[0].Value != 7 || w[2].Value != 9 {
		t.Fatalf("window after trim = %+v", w)
	}
}

func TestWindowSince(t *testing.T) {
	b := NewBus(0)
	for i := 0; i < 5; i++ {
		if err := b.ReportValue("m", float64(i), time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	w := b.Window("m", 3*time.Second)
	if len(w) != 2 || w[0].Value != 3 {
		t.Fatalf("Window(3s) = %+v", w)
	}
	if got := b.Window("none", 0); len(got) != 0 {
		t.Fatalf("Window on missing = %+v", got)
	}
}

func TestWindowStats(t *testing.T) {
	b := NewBus(0)
	for i, v := range []float64{4, 2, 6} {
		if err := b.ReportValue("m", v, time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st := b.WindowStats("m", 0)
	if st.Count != 3 || st.Mean != 4 || st.Min != 2 || st.Max != 6 || st.Last != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if empty := b.WindowStats("none", 0); empty.Count != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestSubscribePrefix(t *testing.T) {
	b := NewBus(0)
	var got []string
	id, err := b.Subscribe("app.1", func(s Sample) { got = append(got, s.Name) })
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for _, n := range []string{"app.1", "app.1.rt", "app.10.rt", "other"} {
		if err := b.ReportValue(n, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != "app.1" || got[1] != "app.1.rt" {
		t.Fatalf("subscriber saw %v", got)
	}
	if !b.Unsubscribe(id) || b.Unsubscribe(id) {
		t.Fatal("Unsubscribe semantics broken")
	}
	if err := b.ReportValue("app.1.rt", 2, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatal("unsubscribed callback fired")
	}
}

func TestSubscribeEmptyPrefixSeesAll(t *testing.T) {
	b := NewBus(0)
	count := 0
	if _, err := b.Subscribe("", func(Sample) { count++ }); err != nil {
		t.Fatal(err)
	}
	if err := b.ReportValue("x", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.ReportValue("y.z", 1, 0); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
}

func TestSubscribeNilFails(t *testing.T) {
	b := NewBus(0)
	if _, err := b.Subscribe("x", nil); err == nil {
		t.Fatal("nil subscriber accepted")
	}
}

func TestNames(t *testing.T) {
	b := NewBus(0)
	for _, n := range []string{"zeta", "alpha"} {
		if err := b.ReportValue(n, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "alpha" {
		t.Fatalf("Names = %v", names)
	}
}

func TestPoll(t *testing.T) {
	b := NewBus(0)
	v := 3.5
	sensors := []Sensor{{Name: "load", Sample: func() float64 { return v }}}
	if err := Poll(b, 10*time.Second, sensors); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	s, ok := b.Last("load")
	if !ok || s.Value != 3.5 || s.At != 10*time.Second {
		t.Fatalf("polled sample = %+v", s)
	}
	if err := Poll(b, 0, []Sensor{{Name: "bad"}}); err == nil {
		t.Fatal("nil sample func accepted")
	}
}

func TestConcurrentReporters(t *testing.T) {
	b := NewBus(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := b.ReportValue("shared", float64(i), time.Duration(i)); err != nil {
					t.Errorf("Report: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(b.Window("shared", 0)); got != 800 {
		t.Fatalf("samples = %d, want 800", got)
	}
}

// Property: WindowStats bounds are consistent (Min <= Mean <= Max) and Last
// equals the final value for any sample sequence.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(raw []int16) bool {
		vals := make([]float64, len(raw))
		b := NewBus(0)
		for i, r := range raw {
			vals[i] = float64(r) / 8 // bounded, finite inputs
			if err := b.ReportValue("m", vals[i], time.Duration(i)); err != nil {
				return false
			}
		}
		st := b.WindowStats("m", 0)
		if len(vals) == 0 {
			return st.Count == 0
		}
		return st.Count == len(vals) &&
			st.Min <= st.Mean+1e-9 && st.Mean <= st.Max+1e-9 &&
			st.Last == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
