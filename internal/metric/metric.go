// Package metric implements Harmony's metric interface (Figure 1 of the
// paper): a unified way to gather data about the performance of
// applications and their execution environment. Data about system
// conditions and application resource usage flow into a Bus, and on to both
// the adaptation controller and individual applications via subscriptions
// and windowed aggregates.
package metric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sample is one observation of a named metric.
type Sample struct {
	// Name identifies the metric, conventionally dotted like namespace
	// paths (e.g. "DBclient.66.responseTime", "node.sp2-01.cpuLoad").
	Name string
	// Value is the observation.
	Value float64
	// At is the (virtual) time of the observation.
	At time.Duration
}

// SubscribeFunc receives samples as they are reported.
type SubscribeFunc func(Sample)

// SubID identifies a subscription.
type SubID uint64

// Bus collects samples, retains bounded per-metric history, and fans out to
// subscribers. It is safe for concurrent use.
type Bus struct {
	mu      sync.Mutex
	history map[string][]Sample
	limit   int
	subs    []subscription
	nextID  SubID
}

type subscription struct {
	id     SubID
	prefix string
	fn     SubscribeFunc
}

// DefaultHistoryLimit bounds retained samples per metric.
const DefaultHistoryLimit = 1024

// NewBus returns a bus retaining up to limit samples per metric
// (DefaultHistoryLimit when limit <= 0).
func NewBus(limit int) *Bus {
	if limit <= 0 {
		limit = DefaultHistoryLimit
	}
	return &Bus{history: make(map[string][]Sample), limit: limit}
}

// Report records a sample and notifies matching subscribers. Subscriber
// callbacks run on the reporting goroutine, outside the bus lock.
func (b *Bus) Report(s Sample) error {
	if s.Name == "" {
		return errors.New("metric: sample needs a name")
	}
	b.mu.Lock()
	h := append(b.history[s.Name], s)
	if len(h) > b.limit {
		h = h[len(h)-b.limit:]
	}
	b.history[s.Name] = h
	var fns []SubscribeFunc
	for _, sub := range b.subs {
		if matchesPrefix(s.Name, sub.prefix) {
			fns = append(fns, sub.fn)
		}
	}
	b.mu.Unlock()
	for _, fn := range fns {
		fn(s)
	}
	return nil
}

// ReportValue is Report with positional arguments.
func (b *Bus) ReportValue(name string, value float64, at time.Duration) error {
	return b.Report(Sample{Name: name, Value: value, At: at})
}

func matchesPrefix(name, prefix string) bool {
	if prefix == "" || prefix == name {
		return true
	}
	return len(name) > len(prefix) && name[:len(prefix)] == prefix && name[len(prefix)] == '.'
}

// Subscribe registers fn for every sample whose name equals prefix or lives
// beneath it (dotted); empty prefix receives everything.
func (b *Bus) Subscribe(prefix string, fn SubscribeFunc) (SubID, error) {
	if fn == nil {
		return 0, errors.New("metric: nil subscriber")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs = append(b.subs, subscription{id: b.nextID, prefix: prefix, fn: fn})
	return b.nextID, nil
}

// Unsubscribe removes a subscription; unknown ids report false.
func (b *Bus) Unsubscribe(id SubID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.subs {
		if b.subs[i].id == id {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return true
		}
	}
	return false
}

// Last returns the most recent sample of a metric.
func (b *Bus) Last(name string) (Sample, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.history[name]
	if len(h) == 0 {
		return Sample{}, false
	}
	return h[len(h)-1], true
}

// Window returns samples of name observed at or after since, oldest first.
func (b *Bus) Window(name string, since time.Duration) []Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.history[name]
	i := sort.Search(len(h), func(i int) bool { return h[i].At >= since })
	out := make([]Sample, len(h)-i)
	copy(out, h[i:])
	return out
}

// Names returns the sorted metric names with history.
func (b *Bus) Names() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.history))
	for n := range b.history {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats summarizes a window of samples.
type Stats struct {
	// Count is the number of samples.
	Count int
	// Mean, Min, Max summarize values; zero when Count is zero.
	Mean, Min, Max float64
	// Last is the most recent value.
	Last float64
}

// WindowStats aggregates samples of name observed at or after since.
func (b *Bus) WindowStats(name string, since time.Duration) Stats {
	samples := b.Window(name, since)
	if len(samples) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(samples), Min: samples[0].Value, Max: samples[0].Value}
	sum := 0.0
	for _, s := range samples {
		sum += s.Value
		if s.Value < st.Min {
			st.Min = s.Value
		}
		if s.Value > st.Max {
			st.Max = s.Value
		}
	}
	st.Mean = sum / float64(len(samples))
	st.Last = samples[len(samples)-1].Value
	return st
}

// Sensor periodically samples a source function into the bus; the paper's
// metric interface gathers node and link conditions this way.
type Sensor struct {
	// Name is the metric reported.
	Name string
	// Sample produces the current value.
	Sample func() float64
}

// Poll reports one observation from each sensor at time now.
func Poll(b *Bus, now time.Duration, sensors []Sensor) error {
	for _, s := range sensors {
		if s.Sample == nil {
			return fmt.Errorf("metric: sensor %q has no sample func", s.Name)
		}
		if err := b.ReportValue(s.Name, s.Sample(), now); err != nil {
			return err
		}
	}
	return nil
}
