package metric

import (
	"errors"
	"fmt"

	"harmony/internal/cluster"
)

// ClusterSensors builds the standard sensor set for a managed cluster, the
// "data about system conditions" flowing into the metric interface in the
// paper's Figure 1: per-node free memory and CPU load, per-link reserved
// bandwidth, and the aggregate switch utilization.
func ClusterSensors(cl *cluster.Cluster) ([]Sensor, error) {
	if cl == nil {
		return nil, errors.New("metric: nil cluster")
	}
	var sensors []Sensor
	for _, host := range cl.Hosts() {
		host := host
		sensors = append(sensors,
			Sensor{
				Name: fmt.Sprintf("node.%s.freeMemoryMB", host),
				Sample: func() float64 {
					ns, err := cl.Ledger().Node(host)
					if err != nil {
						return 0
					}
					return ns.FreeMemoryMB
				},
			},
			Sensor{
				Name: fmt.Sprintf("node.%s.cpuLoad", host),
				Sample: func() float64 {
					ns, err := cl.Ledger().Node(host)
					if err != nil {
						return 0
					}
					return ns.CPULoad
				},
			},
		)
	}
	for _, ls := range cl.Ledger().Links() {
		a, b := ls.Link.A, ls.Link.B
		sensors = append(sensors, Sensor{
			Name: fmt.Sprintf("link.%s.%s.reservedMbps", min2(a, b), max2(a, b)),
			Sample: func() float64 {
				state, err := cl.Ledger().Link(a, b)
				if err != nil {
					return 0
				}
				return state.ReservedMbps
			},
		})
	}
	sensors = append(sensors, Sensor{
		Name:   "switch.utilization",
		Sample: cl.SharedSwitchUtilization,
	})
	return sensors, nil
}

func min2(a, b string) string {
	if a < b {
		return a
	}
	return b
}

func max2(a, b string) string {
	if a < b {
		return b
	}
	return a
}
