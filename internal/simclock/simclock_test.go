package simclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len() = %d, want 0", got)
	}
}

func TestScheduleAtRunsInOrder(t *testing.T) {
	c := New()
	var order []int
	for i, at := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
		i := i
		if _, err := c.ScheduleAt(at, func(time.Duration) { order = append(order, i) }); err != nil {
			t.Fatalf("ScheduleAt: %v", err)
		}
	}
	if ran := c.RunAll(); ran != 3 {
		t.Fatalf("RunAll ran %d events, want 3", ran)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := c.ScheduleAt(time.Second, func(time.Duration) { order = append(order, i) }); err != nil {
			t.Fatalf("ScheduleAt: %v", err)
		}
	}
	c.RunAll()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestScheduleAfterUsesCurrentTime(t *testing.T) {
	c := New()
	var firedAt time.Duration
	_, err := c.ScheduleAt(10*time.Second, func(now time.Duration) {
		if _, err := c.ScheduleAfter(5*time.Second, func(n time.Duration) { firedAt = n }); err != nil {
			t.Errorf("nested ScheduleAfter: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ScheduleAt: %v", err)
	}
	c.RunAll()
	if firedAt != 15*time.Second {
		t.Fatalf("nested event fired at %v, want 15s", firedAt)
	}
}

func TestScheduleAfterRejectsNegative(t *testing.T) {
	c := New()
	if _, err := c.ScheduleAfter(-time.Second, func(time.Duration) {}); err == nil {
		t.Fatal("ScheduleAfter(-1s) succeeded, want error")
	}
}

func TestScheduleNilEventFails(t *testing.T) {
	c := New()
	if _, err := c.ScheduleAt(0, nil); err == nil {
		t.Fatal("ScheduleAt(nil) succeeded, want error")
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	c := New()
	c.AdvanceTo(100 * time.Second)
	var at time.Duration
	if _, err := c.ScheduleAt(5*time.Second, func(now time.Duration) { at = now }); err != nil {
		t.Fatalf("ScheduleAt: %v", err)
	}
	c.RunAll()
	if at != 100*time.Second {
		t.Fatalf("past event ran at %v, want clamped to 100s", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	c := New()
	fired := false
	id, err := c.ScheduleAt(time.Second, func(time.Duration) { fired = true })
	if err != nil {
		t.Fatalf("ScheduleAt: %v", err)
	}
	if !c.Cancel(id) {
		t.Fatal("Cancel reported false for pending event")
	}
	if c.Cancel(id) {
		t.Fatal("double Cancel reported true")
	}
	c.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelUnknownID(t *testing.T) {
	c := New()
	if c.Cancel(12345) {
		t.Fatal("Cancel of unknown id reported true")
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	c := New()
	var fired []time.Duration
	for _, at := range []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second} {
		if _, err := c.ScheduleAt(at, func(now time.Duration) { fired = append(fired, now) }); err != nil {
			t.Fatalf("ScheduleAt: %v", err)
		}
	}
	if ran := c.Run(2 * time.Second); ran != 2 {
		t.Fatalf("Run(2s) ran %d, want 2", ran)
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("Now() = %v after horizon run, want 2s", c.Now())
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 pending", c.Len())
	}
}

func TestAdvanceToMovesIdleClock(t *testing.T) {
	c := New()
	c.AdvanceTo(42 * time.Second)
	if c.Now() != 42*time.Second {
		t.Fatalf("Now() = %v, want 42s", c.Now())
	}
	// AdvanceTo backwards is a no-op.
	c.AdvanceTo(10 * time.Second)
	if c.Now() != 42*time.Second {
		t.Fatalf("Now() = %v after backwards advance, want 42s", c.Now())
	}
}

func TestStopDiscardsAndRejects(t *testing.T) {
	c := New()
	fired := false
	if _, err := c.ScheduleAt(time.Second, func(time.Duration) { fired = true }); err != nil {
		t.Fatalf("ScheduleAt: %v", err)
	}
	c.Stop()
	if ran := c.RunAll(); ran != 0 {
		t.Fatalf("RunAll after Stop ran %d events", ran)
	}
	if fired {
		t.Fatal("event fired after Stop")
	}
	if _, err := c.ScheduleAt(time.Second, func(time.Duration) {}); err != ErrStopped {
		t.Fatalf("ScheduleAt after Stop: err = %v, want ErrStopped", err)
	}
	c.Stop() // idempotent
}

func TestConcurrentScheduling(t *testing.T) {
	c := New()
	const n = 100
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.ScheduleAt(time.Duration(i)*time.Millisecond, func(time.Duration) {
				mu.Lock()
				count++
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("ScheduleAt: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if ran := c.RunAll(); ran != n {
		t.Fatalf("ran %d events, want %d", ran, n)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

// Property: time never goes backwards across any sequence of scheduled events.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		c := New()
		last := time.Duration(-1)
		ok := true
		for _, d := range delaysMs {
			at := time.Duration(d) * time.Millisecond
			_, err := c.ScheduleAt(at, func(now time.Duration) {
				if now < last {
					ok = false
				}
				last = now
			})
			if err != nil {
				return false
			}
		}
		c.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunAll executes exactly the number of scheduled, non-cancelled events.
func TestPropertyRunAllCount(t *testing.T) {
	f := func(delaysMs []uint16, cancelMask []bool) bool {
		c := New()
		ids := make([]EventID, 0, len(delaysMs))
		for _, d := range delaysMs {
			id, err := c.ScheduleAt(time.Duration(d)*time.Millisecond, func(time.Duration) {})
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		cancelled := 0
		for i, id := range ids {
			if i < len(cancelMask) && cancelMask[i] {
				if c.Cancel(id) {
					cancelled++
				}
			}
		}
		return c.RunAll() == len(ids)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
