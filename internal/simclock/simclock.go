// Package simclock provides a discrete-event virtual clock.
//
// Active Harmony's evaluation (Figures 4 and 7 of the paper) runs workloads
// whose interesting behaviour unfolds over hundreds of wall-clock seconds on
// an IBM SP-2. This package substitutes a deterministic virtual clock so the
// same phase structure replays in microseconds: events are scheduled at
// virtual instants, and Run advances time from event to event with no real
// sleeping. The clock is safe for concurrent use.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStopped is returned by scheduling operations after the clock has been
// stopped.
var ErrStopped = errors.New("simclock: clock stopped")

// Event is a callback scheduled to run at a virtual instant. Events run on
// the goroutine that calls Run or Step, in timestamp order; ties are broken
// by scheduling order (FIFO), which keeps runs deterministic.
type Event func(now time.Duration)

type scheduledEvent struct {
	at    time.Duration
	seq   uint64
	fn    Event
	id    EventID
	index int // heap index, maintained by heap.Interface
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*scheduledEvent)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Clock is a discrete-event virtual clock. The zero value is not usable;
// construct one with New.
type Clock struct {
	mu        sync.Mutex
	now       time.Duration
	queue     eventQueue
	nextSeq   uint64
	nextID    EventID
	cancelled map[EventID]struct{}
	stopped   bool
}

// New returns a clock whose current virtual time is zero.
func New() *Clock {
	return &Clock{
		cancelled: make(map[EventID]struct{}),
	}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Len reports the number of pending (non-cancelled) events.
func (c *Clock) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue) - len(c.cancelled)
}

// ScheduleAt registers fn to run at the given absolute virtual time. If at is
// earlier than the current time, the event fires at the current time (it is
// never dropped). It returns an id usable with Cancel.
func (c *Clock) ScheduleAt(at time.Duration, fn Event) (EventID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return 0, ErrStopped
	}
	if fn == nil {
		return 0, errors.New("simclock: nil event")
	}
	if at < c.now {
		at = c.now
	}
	c.nextID++
	c.nextSeq++
	ev := &scheduledEvent{at: at, seq: c.nextSeq, fn: fn, id: c.nextID}
	heap.Push(&c.queue, ev)
	return ev.id, nil
}

// ScheduleAfter registers fn to run d from the current virtual time.
func (c *Clock) ScheduleAfter(d time.Duration, fn Event) (EventID, error) {
	if d < 0 {
		return 0, fmt.Errorf("simclock: negative delay %v", d)
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return 0, ErrStopped
	}
	at := c.now + d
	c.mu.Unlock()
	return c.ScheduleAt(at, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or unknown id
// is a no-op and reports false.
func (c *Clock) Cancel(id EventID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ev := range c.queue {
		if ev.id == id {
			if _, dup := c.cancelled[id]; dup {
				return false
			}
			c.cancelled[id] = struct{}{}
			return true
		}
	}
	return false
}

// Stop marks the clock stopped. Pending events are discarded and further
// scheduling fails with ErrStopped. Stop is idempotent.
func (c *Clock) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
	c.queue = nil
	c.cancelled = make(map[EventID]struct{})
}

// pop removes and returns the earliest runnable event, skipping cancelled
// ones, or nil if none remain.
func (c *Clock) pop() *scheduledEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 {
		ev, ok := heap.Pop(&c.queue).(*scheduledEvent)
		if !ok {
			continue
		}
		if _, skip := c.cancelled[ev.id]; skip {
			delete(c.cancelled, ev.id)
			continue
		}
		c.now = ev.at
		return ev
	}
	return nil
}

// Step runs the single earliest pending event, advancing virtual time to its
// timestamp. It reports whether an event ran.
func (c *Clock) Step() bool {
	ev := c.pop()
	if ev == nil {
		return false
	}
	ev.fn(ev.at)
	return true
}

// Run executes events in timestamp order until the queue drains or until
// virtual time would exceed horizon (inclusive). Events may schedule further
// events. It returns the number of events executed.
func (c *Clock) Run(horizon time.Duration) int {
	ran := 0
	for {
		c.mu.Lock()
		next := -1 * time.Second
		if len(c.queue) > 0 {
			next = c.queue[0].at
		}
		stopped := c.stopped
		c.mu.Unlock()
		if stopped || next < 0 || next > horizon {
			return ran
		}
		if c.Step() {
			ran++
		} else {
			return ran
		}
	}
}

// RunAll executes every pending event (including newly scheduled ones) until
// the queue drains. It returns the number of events executed.
func (c *Clock) RunAll() int {
	ran := 0
	for c.Step() {
		ran++
	}
	return ran
}

// AdvanceTo moves the clock to at without running events scheduled later
// than at; events due at or before at are run first. It is the virtual
// analogue of sleeping until an instant.
func (c *Clock) AdvanceTo(at time.Duration) int {
	ran := c.Run(at)
	c.mu.Lock()
	if !c.stopped && at > c.now {
		c.now = at
	}
	c.mu.Unlock()
	return ran
}
