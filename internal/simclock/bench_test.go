package simclock

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	c := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ScheduleAfter(time.Second, func(time.Duration) {}); err != nil {
			b.Fatal(err)
		}
		c.RunAll()
	}
}

func BenchmarkHeapChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := New()
		for j := 0; j < 128; j++ {
			at := time.Duration((j*37)%100) * time.Millisecond
			if _, err := c.ScheduleAt(at, func(time.Duration) {}); err != nil {
				b.Fatal(err)
			}
		}
		c.RunAll()
	}
}
