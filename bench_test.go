package harmony_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations. Each benchmark replays the
// corresponding experiment end-to-end (RSL -> controller -> simulated
// substrate) and reports the headline quantity of that artifact as a
// custom metric, so `go test -bench=. -benchmem` regenerates the paper's
// rows/series. Absolute numbers differ from the authors' SP-2; the shapes
// are asserted by internal/experiments tests.

import (
	"testing"

	"harmony/internal/experiments"
)

func runExperiment(b *testing.B, run func() (*experiments.Result, error)) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	if !res.Passed() {
		b.Fatalf("shape checks failed:\n%s", res.Format())
	}
	return res
}

// BenchmarkTable1RSLTags regenerates Table 1: decoding a script exercising
// every primary RSL tag.
func BenchmarkTable1RSLTags(b *testing.B) {
	runExperiment(b, experiments.RunTable1)
}

// BenchmarkFigure2aSimpleMatch regenerates Figure 2a: first-fit placement
// of the "Simple" four-node application.
func BenchmarkFigure2aSimpleMatch(b *testing.B) {
	runExperiment(b, experiments.RunFigure2a)
}

// BenchmarkFigure2bBagPredict regenerates Figure 2b: parameterized
// requirements and the piecewise-linear performance model of "Bag".
func BenchmarkFigure2bBagPredict(b *testing.B) {
	runExperiment(b, experiments.RunFigure2b)
}

// BenchmarkFigure3DBBundleEval regenerates Figure 3: decoding the
// client-server database bundle and evaluating its parameterized link
// formula across memory grants.
func BenchmarkFigure3DBBundleEval(b *testing.B) {
	runExperiment(b, experiments.RunFigure3)
}

// benchFigure4Config shrinks Figure 4 to benchmark-friendly scale while
// keeping the paper's shape (5 -> 4/4 -> near-equal thirds on 8 nodes).
func benchFigure4Config() experiments.Figure4Config {
	cfg := experiments.DefaultFigure4Config()
	cfg.Tasks = 30
	return cfg
}

// BenchmarkFigure4aOnlineReconfig regenerates Figure 4a: iteration times of
// the parallel application as competing jobs arrive. The reported metric is
// the first uncontended iteration time (paper: the application-specific
// model's value at the chosen parallelism).
func BenchmarkFigure4aOnlineReconfig(b *testing.B) {
	var firstIter float64
	for i := 0; i < b.N; i++ {
		res, out, err := experiments.RunFigure4Outcome(benchFigure4Config())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatalf("shape checks failed:\n%s", res.Format())
		}
		if pts := out.Recorder.Series("job 1 time"); len(pts) > 0 {
			firstIter = pts[0].Value
		}
	}
	b.ReportMetric(firstIter, "iter1-s")
}

// BenchmarkFigure4bConfigChoices regenerates Figure 4b: the configurations
// Harmony chooses as jobs arrive. The reported metrics are the final
// partitions' extremes (equal partitions => spread 1 on 8 nodes).
func BenchmarkFigure4bConfigChoices(b *testing.B) {
	var minW, maxW float64
	for i := 0; i < b.N; i++ {
		res, out, err := experiments.RunFigure4Outcome(benchFigure4Config())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatalf("shape checks failed:\n%s", res.Format())
		}
		minW, maxW = 1e18, 0
		for _, w := range out.FinalWorkers {
			if float64(w) < minW {
				minW = float64(w)
			}
			if float64(w) > maxW {
				maxW = float64(w)
			}
		}
	}
	b.ReportMetric(minW, "min-workers")
	b.ReportMetric(maxW, "max-workers")
}

// benchFigure7Config shrinks the Wisconsin relations so one iteration of
// the full client-server adaptation run fits a benchmark loop; phase
// structure and the QS->DS crossover are preserved.
func benchFigure7Config() experiments.Figure7Config {
	cfg := experiments.DefaultFigure7Config()
	cfg.TuplesPerRelation = 19000
	cfg.ServerMemoryMB = 32
	return cfg
}

// BenchmarkFigure7DatabaseAdaptation regenerates Figure 7: three database
// clients arriving over time, the controller switching query processing
// from the server to the clients. Reported metrics: the virtual time of
// the reconfiguration and the single-client response time.
func BenchmarkFigure7DatabaseAdaptation(b *testing.B) {
	var switchAt, phase1 float64
	for i := 0; i < b.N; i++ {
		res, out, err := experiments.RunFigure7Outcome(benchFigure7Config())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatalf("shape checks failed:\n%s", res.Format())
		}
		switchAt = out.SwitchAt.Seconds()
		if m, ok := out.Recorder.WindowMean("client 1", 0, 200e9); ok {
			phase1 = m
		}
	}
	b.ReportMetric(switchAt, "switch-s")
	b.ReportMetric(phase1, "rt1-s")
}

// BenchmarkAblationFrictionalCost regenerates ablation A1: reconfiguration
// counts with the frictional cost honored vs ignored under flapping load.
func BenchmarkAblationFrictionalCost(b *testing.B) {
	runExperiment(b, func() (*experiments.Result, error) {
		return experiments.RunAblationFriction(experiments.DefaultAblationFrictionConfig())
	})
}

// BenchmarkAblationGreedyVsExhaustive regenerates ablation A2: the greedy
// one-bundle-at-a-time policy vs the exhaustive cross-product search.
func BenchmarkAblationGreedyVsExhaustive(b *testing.B) {
	runExperiment(b, experiments.RunAblationSearch)
}

// BenchmarkAblationDefaultVsExplicitModel regenerates ablation A3: the
// default CPU+communication model vs an application-supplied explicit
// model on the Bag workload.
func BenchmarkAblationDefaultVsExplicitModel(b *testing.B) {
	runExperiment(b, experiments.RunAblationModel)
}
