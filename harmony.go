// Package harmony is an implementation of Active Harmony as described in
// "Exposing Application Alternatives" (Keleher, Hollingsworth, Perkovic;
// ICDCS 1999): a centralized adaptation controller to which applications
// export tuning alternatives — bundles of mutually exclusive options with
// quantified resource requirements — written in the Harmony resource
// specification language (RSL). The controller matches requirements to
// cluster resources, predicts response times, and reconfigures running
// applications to optimize a global objective function.
//
// The package is a facade over the building blocks in internal/:
//
//   - RSL parsing and decoding (internal/rsl)
//   - the hierarchical namespace (internal/namespace)
//   - resource model, cluster and first-fit matching (internal/resource,
//     internal/cluster, internal/match)
//   - performance prediction and objectives (internal/predict,
//     internal/objective)
//   - the adaptation controller (internal/core)
//   - the TCP server and client runtime library (internal/server,
//     internal/hclient) implementing the paper's Figure 5 API
//   - simulated substrate: virtual clock, processor-sharing resources, a
//     miniature Wisconsin-benchmark database, and a bag-of-tasks
//     application (internal/simclock, internal/procsim, internal/minidb,
//     internal/bag)
//
// Quickstart (see examples/quickstart for the full program):
//
//	cluster, _ := harmony.NewSP2Cluster(4)
//	ctrl, _ := harmony.NewController(harmony.ControllerConfig{
//		Cluster: cluster,
//		Clock:   harmony.NewClock(),
//	})
//	srv, _ := harmony.ListenAndServe("127.0.0.1:0", harmony.ServerConfig{Controller: ctrl})
//	defer srv.Close()
//
//	client, _ := harmony.Dial(srv.Addr())
//	defer client.Close()
//	client.Startup("Simple", true)
//	instance, _ := client.BundleSetup(`harmonyBundle Simple:1 config {
//		{only {node worker * {seconds 300} {memory 32} {replicate 4}}}
//	}`)
package harmony

import (
	"net"
	"time"

	"harmony/internal/bounds"
	"harmony/internal/cluster"
	"harmony/internal/core"
	"harmony/internal/hclient"
	"harmony/internal/match"
	"harmony/internal/metric"
	"harmony/internal/namespace"
	"harmony/internal/objective"
	"harmony/internal/predict"
	"harmony/internal/protocol"
	"harmony/internal/rsl"
	"harmony/internal/server"
	"harmony/internal/simclock"
	"harmony/internal/vet"
)

// Core controller types.
type (
	// Controller is the Harmony adaptation controller (Section 2).
	Controller = core.Controller
	// ControllerConfig parameterizes NewController.
	ControllerConfig = core.Config
	// Choice is one concrete configuration of a bundle.
	Choice = core.Choice
	// Event describes a reconfiguration decision.
	Event = core.Event
	// Snapshot describes one application's current state.
	Snapshot = core.Snapshot
)

// Cluster and clock types.
type (
	// Cluster is the set of managed machines.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes NewCluster.
	ClusterConfig = cluster.Config
	// Clock is the discrete-event virtual clock driving adaptation.
	Clock = simclock.Clock
)

// RSL types.
type (
	// BundleSpec is a decoded harmonyBundle.
	BundleSpec = rsl.BundleSpec
	// OptionSpec is one mutually exclusive alternative.
	OptionSpec = rsl.OptionSpec
	// NodeDecl is a decoded harmonyNode resource declaration.
	NodeDecl = rsl.NodeDecl
)

// Client/server types (the paper's Figure 5/6 prototype).
type (
	// Server is the Harmony server process.
	Server = server.Server
	// ServerConfig parameterizes ListenAndServe.
	ServerConfig = server.Config
	// Client is the application-side runtime library.
	Client = hclient.Client
	// DialConfig tunes client dialing, deadlines and reconnection.
	DialConfig = hclient.DialConfig
	// ClientStats counts a client's reconnects, resumes and replays.
	ClientStats = hclient.Stats
	// Variable is a Harmony variable handle.
	Variable = hclient.Variable
	// VarValue is a Harmony variable value.
	VarValue = protocol.VarValue
	// AppStatus is one application's state in a status reply.
	AppStatus = protocol.AppStatus
)

// Replication types (the replicated controller state machine).
type (
	// Replica is one member of a replicated controller cluster.
	Replica = server.Replica
	// ReplicaConfig parameterizes NewReplica.
	ReplicaConfig = server.ReplicaConfig
	// ReplicaStatus is one replica's replication state.
	ReplicaStatus = protocol.ReplicaStatus
)

// NewReplica starts a replica listening for peer traffic on peerAddr.
// Attach it to a client-facing server via ServerConfig.Replica.
func NewReplica(peerAddr string, cfg ReplicaConfig) (*Replica, error) {
	return server.NewReplica(peerAddr, cfg)
}

// Matching and prediction policy types.
type (
	// MatchStrategy orders candidate nodes during matching (first-fit,
	// best-fit, worst-fit).
	MatchStrategy = match.Strategy
	// CriticalPathParams tunes the serialized occupancy+wire communication
	// model (the Section 3.4 refinement).
	CriticalPathParams = predict.CriticalPathParams
)

// Matching strategies.
const (
	// FirstFit is the paper's policy (Section 4.1).
	FirstFit = match.FirstFit
	// BestFit packs tightly to avoid fragmentation.
	BestFit = match.BestFit
	// WorstFit balances residual capacity.
	WorstFit = match.WorstFit
)

// MatchStrategyByName resolves a strategy ("first-fit", "best-fit",
// "worst-fit").
func MatchStrategyByName(name string) (MatchStrategy, error) {
	return match.StrategyByName(name)
}

// Supporting types.
type (
	// Namespace is the hierarchical controller/application namespace.
	Namespace = namespace.Tree
	// MetricBus is the metric interface's sample bus.
	MetricBus = metric.Bus
	// ObjectiveFunc reduces per-job predictions to one value to minimize.
	ObjectiveFunc = objective.Func
)

// Static-analysis types (package vet): validating RSL specs before they
// reach the controller.
type (
	// VetReport is the result of analyzing one RSL script.
	VetReport = vet.Report
	// VetDiagnostic is one finding with check ID, severity and position.
	VetDiagnostic = vet.Diagnostic
	// VetOptions parameterizes an analysis run.
	VetOptions = vet.Options
	// VetCheckInfo documents one registered check.
	VetCheckInfo = vet.CheckInfo
	// VetSeverity classifies a diagnostic.
	VetSeverity = vet.Severity
	// VetWorkloadSpec is one spec in a joint workload analysis.
	VetWorkloadSpec = vet.WorkloadSpec
	// VetMode selects how the server treats vet findings on registration.
	VetMode = server.VetMode
)

// Vet severities and server vet modes.
const (
	// VetInfo is advisory.
	VetInfo = vet.SevInfo
	// VetWarning marks legal but suspicious constructs.
	VetWarning = vet.SevWarn
	// VetError marks specs that can never work as written.
	VetError = vet.SevError

	// VetModeWarn logs findings but accepts every bundle (the default).
	VetModeWarn = server.VetWarn
	// VetModeOff skips analysis.
	VetModeOff = server.VetOff
	// VetModeReject refuses bundles with error-severity findings.
	VetModeReject = server.VetReject
)

// Bound-vector analysis types (package bounds): interval facts about
// options that hold for every variable binding and grant.
type (
	// AnalyzeBundleReport is one bundle's bound vectors, dominance partial
	// order and unreachability verdicts.
	AnalyzeBundleReport = bounds.BundleReport
	// AnalyzeOptionReport is one option's entry in an AnalyzeBundleReport.
	AnalyzeOptionReport = bounds.OptionReport
)

// AnalyzeBundle computes a bundle's per-option bound vectors and dominance
// partial order; with cluster declarations it additionally proves options
// unreachable against declared capacity (harmonyctl analyze).
func AnalyzeBundle(b *BundleSpec, decls []*NodeDecl) *AnalyzeBundleReport {
	return bounds.Analyze(b, decls)
}

// VetScript statically analyzes an RSL script.
func VetScript(src string, opts VetOptions) *VetReport { return vet.Script(src, opts) }

// VetWorkload jointly analyzes a set of specs against one cluster,
// reporting workloads that provably cannot fit even in their best case.
func VetWorkload(specs []VetWorkloadSpec, opts VetOptions) *VetReport {
	return vet.Workload(specs, opts)
}

// VetSARIF renders reports as a SARIF 2.1.0 log for code-review tooling.
func VetSARIF(reports []*VetReport) ([]byte, error) { return vet.SARIF(reports) }

// VetChecks enumerates the registered static checks.
func VetChecks() []VetCheckInfo { return vet.Checks() }

// ParseVetMode parses a server vet mode name ("warn", "reject", "off").
func ParseVetMode(s string) (VetMode, error) { return server.ParseVetMode(s) }

// DefaultPort is the Harmony server's well-known TCP port.
const DefaultPort = protocol.DefaultPort

// NewClock returns a virtual clock starting at zero.
func NewClock() *Clock { return simclock.New() }

// NewController builds an adaptation controller.
func NewController(cfg ControllerConfig) (*Controller, error) { return core.New(cfg) }

// NewCluster builds a cluster from harmonyNode declarations.
func NewCluster(cfg ClusterConfig, decls []*NodeDecl) (*Cluster, error) {
	return cluster.New(cfg, decls)
}

// NewSP2Cluster builds an n-node simulated IBM SP-2, the paper's testbed.
func NewSP2Cluster(n int) (*Cluster, error) { return cluster.NewSP2(n) }

// NewMetricBus builds a metric bus retaining up to limit samples per metric
// (a default limit when limit <= 0).
func NewMetricBus(limit int) *MetricBus { return metric.NewBus(limit) }

// MetricSensor samples one quantity into the bus when polled.
type MetricSensor = metric.Sensor

// ClusterSensors builds the standard node/link/switch sensor set for a
// cluster (the paper's Figure 1 metric interface inputs).
func ClusterSensors(cl *Cluster) ([]MetricSensor, error) { return metric.ClusterSensors(cl) }

// PollSensors records one observation from each sensor at virtual time now.
func PollSensors(bus *MetricBus, now time.Duration, sensors []MetricSensor) error {
	return metric.Poll(bus, now, sensors)
}

// ListenAndServe starts a Harmony server on addr.
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	return server.Listen(addr, cfg)
}

// Serve runs a Harmony server on an existing listener (for tests and
// fault-injection wrappers).
func Serve(ln net.Listener, cfg ServerConfig) (*Server, error) {
	return server.Serve(ln, cfg)
}

// Dial connects an application to a Harmony server (harmony_startup and
// friends live on the returned Client).
func Dial(addr string) (*Client, error) { return hclient.Dial(addr) }

// DialWith connects like Dial with explicit dial timeouts, write deadlines,
// heartbeats and automatic reconnection (see DialConfig).
func DialWith(addr string, cfg DialConfig) (*Client, error) {
	return hclient.DialWith(addr, cfg)
}

// DecodeScript parses an RSL script into bundles and node declarations.
func DecodeScript(src string) ([]*BundleSpec, []*NodeDecl, error) {
	return rsl.DecodeScript(src)
}

// ObjectiveByName resolves a built-in objective function ("mean", "total",
// "throughput", "max", "weighted").
func ObjectiveByName(name string) (ObjectiveFunc, error) { return objective.ByName(name) }

// NumVar builds a numeric Harmony variable value.
func NumVar(v float64) VarValue { return protocol.NumVar(v) }

// StrVar builds a string Harmony variable value.
func StrVar(s string) VarValue { return protocol.StrVar(s) }
