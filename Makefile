GO ?= go

.PHONY: build test check lint fuzz bench chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 gate: gofmt, go vet, race detector.
check:
	sh scripts/check.sh

# Project invariant analyzers (lockdiscipline, viewpurity, memoinvalidation,
# goroutinelife, protoexhaustive, replaydeterminism); see docs/ANALYZERS.md.
lint:
	$(GO) run ./cmd/harmonylint ./...

# Short fuzz smoke of the parser->decoder->analyzer pipeline.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=30s ./internal/rsl/
	$(GO) test -run=^$$ -fuzz=FuzzVet -fuzztime=30s ./internal/vet/

# Optimizer hot-path benchmark, gated against the committed BENCH_3.json.
bench:
	sh scripts/bench.sh

# Seeded chaos soak across the fixed 20-seed matrix: single-server churn
# plus the replication soak (leader-kill + follower restart); see
# docs/FAULTS.md and docs/REPLICATION.md.
chaos:
	sh scripts/chaos.sh
